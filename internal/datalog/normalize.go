package datalog

import (
	"fmt"
	"sort"
)

// freshPredicates hands out predicate names that do not clash with a schema.
type freshPredicates struct {
	used map[string]bool
	n    int
}

func newFreshPredicates(p *Program) *freshPredicates {
	f := &freshPredicates{used: make(map[string]bool)}
	sch, _ := p.Schema()
	for pred := range sch {
		f.used[pred] = true
	}
	return f
}

func (f *freshPredicates) next(prefix string) string {
	for {
		name := fmt.Sprintf("%s#%d", prefix, f.n)
		f.n++
		if !f.used[name] {
			f.used[name] = true
			return name
		}
	}
}

// SingleHead rewrites every multi-head rule into single-head rules, following
// footnote 6 of the paper (and [Calì, Gottlob, Pieris 2012]): a rule
// body → ∃Y c1, …, cj becomes body → ∃Y aux(F, Y) and aux(F, Y) → ci, where
// F is the frontier of the original rule. The result is equivalent on all
// original predicates.
func SingleHead(p *Program) *Program {
	fresh := newFreshPredicates(p)
	out := &Program{Constraints: append([]Constraint(nil), p.Constraints...)}
	for _, r := range p.Rules {
		if len(r.Head) == 1 {
			out.Add(r)
			continue
		}
		frontier := r.Frontier()
		ex := r.ExistentialVars()
		args := append(append([]Term(nil), frontier...), ex...)
		aux := Atom{Pred: fresh.next("h"), Args: args}
		out.Add(Rule{BodyPos: r.BodyPos, BodyNeg: r.BodyNeg, Head: []Atom{aux}, Provenance: r.Provenance})
		for _, h := range r.Head {
			out.Add(Rule{BodyPos: []Atom{aux}, Head: []Atom{h}, Provenance: r.Provenance})
		}
	}
	return out
}

// SingleExistential applies the normalization N(ρ) of Section 6.3 so that
// every rule has at most one occurrence of one existentially quantified
// variable: a rule a1,…,an,¬b1,…,¬bm → ∃Y1…∃Yk c becomes the chain
//
//	a1,…,an,¬b1,…,¬bm → ∃Y1 pρ1(X, Y1)
//	pρ1(X, Y1)        → ∃Y2 pρ2(X, Y1, Y2)
//	…
//	pρk(X, Y1,…,Yk)   → c
//
// where X = var(body(ρ)) ∩ var(head(ρ)). Rules must be single-head (apply
// SingleHead first); constraints pass through unchanged. The transformation
// preserves wardedness and all derivable ground atoms (Π(D)↓ = Π'(D)↓ on the
// original schema).
func SingleExistential(p *Program) *Program {
	fresh := newFreshPredicates(p)
	out := &Program{Constraints: append([]Constraint(nil), p.Constraints...)}
	for _, r := range p.Rules {
		if len(r.Head) != 1 {
			// Preserve the rule untouched; callers are expected to run
			// SingleHead first. Multi-head rules with ≤1 existential are
			// still fine for the chase engine.
			out.Add(r)
			continue
		}
		ex := r.ExistentialVars()
		head := r.Head[0]
		if len(ex) <= 1 {
			// Enforce "at most one occurrence" too: an existential variable
			// repeated in the head still counts as several occurrences.
			if len(ex) == 1 && countVar(head, ex[0]) > 1 {
				// fall through to the chain construction below
			} else {
				out.Add(r)
				continue
			}
		}
		frontier := r.Frontier()
		prevAtom := Atom{}
		prevArgs := append([]Term(nil), frontier...)
		for i, y := range ex {
			prevArgs = append(prevArgs, y)
			auxAtom := Atom{Pred: fresh.next("p"), Args: append([]Term(nil), prevArgs...)}
			if i == 0 {
				out.Add(Rule{BodyPos: r.BodyPos, BodyNeg: r.BodyNeg, Head: []Atom{auxAtom}, Provenance: r.Provenance})
			} else {
				out.Add(Rule{BodyPos: []Atom{prevAtom}, Head: []Atom{auxAtom}, Provenance: r.Provenance})
			}
			prevAtom = auxAtom
		}
		out.Add(Rule{BodyPos: []Atom{prevAtom}, Head: []Atom{head}, Provenance: r.Provenance})
	}
	return out
}

func countVar(a Atom, v Term) int {
	n := 0
	for _, t := range a.Args {
		if t == v {
			n++
		}
	}
	return n
}

// IsHeadGrounded reports whether every head term of the rule is a constant or
// an (analysis-)harmless variable (Section 6.3).
func IsHeadGrounded(an *Analysis, r Rule) bool {
	vc := an.Classify(r)
	for _, h := range r.Head {
		for _, t := range h.Args {
			if t.IsVar() && !vc.Harmless[t] {
				return false
			}
		}
	}
	return true
}

// IsSemiBodyGrounded reports whether at most one positive body atom of the
// rule contains a harmful variable (Section 6.3).
func IsSemiBodyGrounded(an *Analysis, r Rule) bool {
	vc := an.Classify(r)
	n := 0
	for _, a := range r.BodyPos {
		for _, v := range a.Vars() {
			if vc.Harmful[v] {
				n++
				break
			}
		}
	}
	return n <= 1
}

// HeadGroundedSplit normalizes a *positive* warded program so that every rule
// is head-grounded or semi-body-grounded, following Section 6.3: a rule
//
//	s0(X,Y1), s1(…), …, sn(…) → ∃W t(X, Y3, Z2, W)
//
// with ward s0 is split into
//
//	s1(…), …, sn(…)      → tρ(S)            (head-grounded)
//	s0(X,Y1), tρ(S)      → ∃W t(X,Y3,Z2,W)  (semi-body-grounded)
//
// where S collects the variables shared between the ward and the rest plus
// the head variables contributed by the rest — all harmless by wardedness.
// The program must be warded and negation-free; an error is returned
// otherwise. Ground-atom semantics is preserved: Π(D)↓ = Π'(D)↓ on sch(Π).
func HeadGroundedSplit(p *Program) (*Program, error) {
	if p.HasNegation() {
		return nil, fmt.Errorf("datalog: HeadGroundedSplit requires a negation-free program; eliminate negation first")
	}
	if err := CheckWarded(p); err != nil {
		return nil, err
	}
	an := Analyze(p)
	fresh := newFreshPredicates(p)
	out := &Program{Constraints: append([]Constraint(nil), p.Constraints...)}
	for _, r := range p.Rules {
		if IsHeadGrounded(an, r) || IsSemiBodyGrounded(an, r) {
			out.Add(r)
			continue
		}
		ward, ok := FindWard(an, r)
		if !ok {
			return nil, fmt.Errorf("datalog: rule %v has no ward", r)
		}
		wardIdx := -1
		for i, a := range r.BodyPos {
			if a.Equal(ward) {
				wardIdx = i
				break
			}
		}
		rest := make([]Atom, 0, len(r.BodyPos)-1)
		for i, a := range r.BodyPos {
			if i != wardIdx {
				rest = append(rest, a)
			}
		}
		// S = (vars shared between ward and rest) ∪ (head vars occurring in
		// rest). Both sets are harmless under wardedness.
		share := make(map[Term]bool)
		restVars := make(map[Term]bool)
		for _, v := range VarsOf(rest) {
			restVars[v] = true
		}
		for _, v := range ward.Vars() {
			if restVars[v] {
				share[v] = true
			}
		}
		for _, v := range r.HeadVars() {
			if restVars[v] {
				share[v] = true
			}
		}
		args := make([]Term, 0, len(share))
		for v := range share {
			args = append(args, v)
		}
		sort.Slice(args, func(i, j int) bool { return args[i].Name < args[j].Name })
		auxAtom := Atom{Pred: fresh.next("t"), Args: args}
		out.Add(Rule{BodyPos: rest, Head: []Atom{auxAtom}, Provenance: r.Provenance})
		out.Add(Rule{BodyPos: []Atom{ward, auxAtom}, Head: r.Head, Provenance: r.Provenance})
	}
	return out, nil
}

// NormalizeForProofTree prepares a positive warded program for the ProofTree
// algorithm of Section 6.3: single-head, at most one existential occurrence
// per rule, and every rule head-grounded or semi-body-grounded.
func NormalizeForProofTree(p *Program) (*Program, error) {
	q := SingleExistential(SingleHead(p))
	return HeadGroundedSplit(q)
}

// StarConstant is the reserved constant ⋆ of Theorem 4.4 (also reused by the
// SPARQL translation of Section 5.1 for unbound positions).
const StarConstant = "⋆"

// ReduceConstraints applies the Π⊥ construction of Theorem 4.4: every
// constraint a1,…,an → ⊥ becomes the rule a1,…,an → p(⋆,…,⋆) on the query's
// output predicate p. For the resulting query Q', Q(D) = ⊤ iff the all-⋆
// tuple is in Q'(D), and otherwise Q(D) = Q'(D) minus that tuple.
func ReduceConstraints(q Query) Query {
	if len(q.Program.Constraints) == 0 {
		return q
	}
	arity := q.OutputArity()
	if arity < 0 {
		arity = 0
	}
	star := make([]Term, arity)
	for i := range star {
		star[i] = C(StarConstant)
	}
	prog := q.Program.Clone()
	for _, c := range prog.Constraints {
		prog.Add(Rule{BodyPos: c.Body, Head: []Atom{{Pred: q.Output, Args: star}}})
	}
	prog.Constraints = nil
	return Query{Program: prog, Output: q.Output}
}

// StarTuple returns the all-⋆ tuple of the given arity, used to detect
// inconsistency after ReduceConstraints.
func StarTuple(arity int) []Term {
	out := make([]Term, arity)
	for i := range out {
		out[i] = C(StarConstant)
	}
	return out
}
