package datalog

import (
	"strings"
	"testing"
)

func TestParseQueryOne(t *testing.T) {
	// Query (2) of the paper.
	prog, err := Parse(`triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> query(?X).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
	r := prog.Rules[0]
	if len(r.BodyPos) != 2 || len(r.BodyNeg) != 0 || len(r.Head) != 1 {
		t.Fatalf("rule shape wrong: %v", r)
	}
	if r.Head[0].Pred != "query" || r.Head[0].Args[0] != V("X") {
		t.Errorf("head = %v", r.Head[0])
	}
	if r.BodyPos[0].Args[1] != C("is_author_of") {
		t.Errorf("constant parsed as %v", r.BodyPos[0].Args[1])
	}
}

func TestParseExistential(t *testing.T) {
	// The co-authorship rule of Section 2.
	prog := MustParse(`
		triple(?X, is_coauthor_of, ?Y) ->
			exists ?Z triple(?X, is_author_of, ?Z), triple(?Y, is_author_of, ?Z).
	`)
	r := prog.Rules[0]
	ex := r.ExistentialVars()
	if len(ex) != 1 || ex[0] != V("Z") {
		t.Fatalf("existential vars = %v", ex)
	}
	if len(r.Head) != 2 {
		t.Errorf("head atoms = %d, want 2", len(r.Head))
	}
}

func TestParseImplicitExistential(t *testing.T) {
	// Head variables absent from the body are existential even without the
	// explicit quantifier.
	prog := MustParse(`subj(?X) -> bn(?X, ?Y).`)
	ex := prog.Rules[0].ExistentialVars()
	if len(ex) != 1 || ex[0] != V("Y") {
		t.Fatalf("existential vars = %v", ex)
	}
}

func TestParseNegation(t *testing.T) {
	for _, src := range []string{
		`less0(?X, ?Y), not not_min(?X) -> zero0(?X).`,
		`less0(?X, ?Y), !not_min(?X) -> zero0(?X).`,
		`less0(?X, ?Y), ¬not_min(?X) -> zero0(?X).`,
	} {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		r := prog.Rules[0]
		if len(r.BodyNeg) != 1 || r.BodyNeg[0].Pred != "not_min" {
			t.Errorf("%s: BodyNeg = %v", src, r.BodyNeg)
		}
	}
}

func TestParsePredicateNamedNot(t *testing.T) {
	// "not" followed by '(' is a predicate, not negation.
	prog := MustParse(`not(?X), p(?X) -> q(?X).`)
	r := prog.Rules[0]
	if len(r.BodyPos) != 2 || r.BodyPos[0].Pred != "not" {
		t.Fatalf("rule = %v", r)
	}
}

func TestParseConstraint(t *testing.T) {
	for _, src := range []string{
		`type(?X, ?Y), type(?X, ?Z), disj(?Y, ?Z) -> false.`,
		`type(?X, ?Y), type(?X, ?Z), disj(?Y, ?Z) -> bottom.`,
		`type(?X, ?Y), type(?X, ?Z), disj(?Y, ?Z) -> ⊥.`,
	} {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if len(prog.Constraints) != 1 || len(prog.Rules) != 0 {
			t.Errorf("%s: got %d constraints, %d rules", src, len(prog.Constraints), len(prog.Rules))
		}
		if len(prog.Constraints[0].Body) != 3 {
			t.Errorf("constraint body = %v", prog.Constraints[0].Body)
		}
	}
}

func TestParseUnicodeSyntax(t *testing.T) {
	prog := MustParse(`p(?X) → ∃ ?Z s(?X, ?Z).`)
	r := prog.Rules[0]
	if len(r.ExistentialVars()) != 1 {
		t.Errorf("unicode rule = %v", r)
	}
}

func TestParseZeroArity(t *testing.T) {
	prog := MustParse(`ism(?X, ?Y), max(?Y), not noclique(?X) -> yes().`)
	if prog.Rules[0].Head[0].Arity() != 0 {
		t.Errorf("yes() should be 0-ary")
	}
}

func TestParseQuotedConstants(t *testing.T) {
	prog := MustParse(`triple(?X, name, "Jeffrey Ullman") -> q(?X).`)
	if prog.Rules[0].BodyPos[0].Args[2] != C("Jeffrey Ullman") {
		t.Errorf("quoted constant = %v", prog.Rules[0].BodyPos[0].Args[2])
	}
	prog = MustParse(`p(?X, "esc\"aped\\x\n") -> q(?X).`)
	if prog.Rules[0].BodyPos[0].Args[1] != C("esc\"aped\\x\n") {
		t.Errorf("escapes = %q", prog.Rules[0].BodyPos[0].Args[1].Name)
	}
}

func TestParseComments(t *testing.T) {
	prog := MustParse(`
		% the transport rules of Section 2
		triple(?X, partOf, transportService) -> ts(?X). // seed
		triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
	`)
	if len(prog.Rules) != 2 {
		t.Errorf("rules = %d", len(prog.Rules))
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		`p(?X) -> q(?X)`:                     "missing final dot",
		`p(?X) q(?X).`:                       "missing separator",
		`p(?X,) -> q(?X).`:                   "dangling comma",
		`p(?X) -> exists q(?X).`:             "exists without variables",
		`p(?X) -> exists ?X q(?X).`:          "existential also in body",
		`p(?X) -> exists ?Z q(?X).`:          "declared but unused existential",
		`-> q(?X).`:                          "empty body",
		`p(?X), not r(?Y) -> q(?X).`:         "unsafe negation",
		`p(?X, "unterminated -> q(?X).`:      "unterminated string",
		`p(?) -> q(?X).`:                     "empty variable",
		`p(?X) - q(?X).`:                     "lone dash",
		`p(?X), not r(?X) -> false.`:         "negation in constraint",
		`p(?X) -> q(?X). p(?X,?Y) -> q(?X).`: "arity clash (Validate via Schema is not checked here)",
	}
	for src, why := range bad {
		if _, err := Parse(src); err == nil && why != "arity clash (Validate via Schema is not checked here)" {
			t.Errorf("Parse(%q) succeeded, want error (%s)", src, why)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	// Program String output must re-parse to an identical program.
	srcs := []string{
		`triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> query(?X).`,
		`p(?X), not q(?X) -> exists ?Z r(?X, ?Z).`,
		`a(?X, ?Y), b(?Y) -> false.`,
		`t(?X) -> exists ?Z p(?X, ?Z).`,
		`zero(?X) -> exists ?Y ism(?Y, ?X).`,
	}
	for _, src := range srcs {
		p1 := MustParse(src)
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("re-parse of %q (%q) failed: %v", src, p1.String(), err)
		}
		if p1.String() != p2.String() {
			t.Errorf("round trip changed program:\n%s\nvs\n%s", p1, p2)
		}
	}
}

func TestParseAtomHelper(t *testing.T) {
	a, err := ParseAtom(`triple(?X, rdf:type, owl:Class)`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Pred != "triple" || a.Args[2] != C("owl:Class") {
		t.Errorf("atom = %v", a)
	}
	if _, err := ParseAtom(`p(?X) trailing`); err == nil {
		t.Error("trailing input should fail")
	}
	if _, err := ParseAtom(`?X`); err == nil {
		t.Error("non-atom should fail")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("p(?X)")
}

func TestParseQueryValidatesOutput(t *testing.T) {
	if _, err := ParseQuery(`p(?X) -> q(?X). q(?X) -> r(?X).`, "q"); err == nil {
		t.Error("output predicate occurring in a body must be rejected")
	}
	q, err := ParseQuery(`p(?X) -> q(?X).`, "q")
	if err != nil {
		t.Fatal(err)
	}
	if q.OutputArity() != 1 {
		t.Errorf("OutputArity = %d", q.OutputArity())
	}
}

func TestParseLineNumbersInErrors(t *testing.T) {
	_, err := Parse("p(?X) -> q(?X).\n\nbroken(?X -> q(?X).")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should mention line 3, got %v", err)
	}
}

func TestSchemaArityClash(t *testing.T) {
	prog := MustParse(`p(?X) -> q(?X).`)
	prog.Add(Rule{BodyPos: []Atom{NewAtom("p", V("X"), V("Y"))}, Head: []Atom{NewAtom("r", V("X"))}})
	if _, err := prog.Schema(); err == nil {
		t.Error("arity clash should be detected by Schema")
	}
}
