package datalog

import "testing"

// cliqueProgram is the k-clique query program of Example 4.3 (Π_aux ∪ Π_clique).
const cliqueProgramSrc = `
	% Π_aux: linear order on [0,k]
	succ0(?X, ?Y) -> less0(?X, ?Y).
	succ0(?X, ?Y), less0(?Y, ?Z) -> less0(?X, ?Z).
	less0(?X, ?Y) -> not_max(?X).
	less0(?X, ?Y) -> not_min(?Y).
	less0(?X, ?Y), not not_min(?X) -> zero0(?X).
	less0(?Y, ?X), not not_max(?X) -> max0(?X).
	% Π_aux: copy into the clique schema
	node0(?X) -> node(?X).
	edge0(?X, ?Y) -> edge(?X, ?Y).
	succ0(?X, ?Y) -> succ(?X, ?Y).
	less0(?X, ?Y) -> less(?X, ?Y).
	zero0(?X) -> zero(?X).
	max0(?X) -> max(?X).
	% Π_clique: the tree of mappings
	zero(?X) -> exists ?Y ism(?Y, ?X).
	ism(?X, ?Y), succ(?Y, ?Z), node(?W) ->
		exists ?U next(?X, ?W, ?U), ism(?U, ?Z), map(?U, ?Z, ?W).
	next(?X, ?Y, ?Z), map(?X, ?U, ?V) -> map(?Z, ?U, ?V).
	less(?X, ?Y), map(?Z, ?X, ?W), map(?Z, ?Y, ?U), not edge(?W, ?U) -> noclique(?Z).
	less(?X, ?Y), map(?Z, ?X, ?W), map(?Z, ?Y, ?W) -> noclique(?Z).
	ism(?X, ?Y), max(?Y), not noclique(?X) -> yes().
`

// example610 is the warded program of Example 6.10 / Figure 1.
const example610Src = `
	s(?X, ?Y, ?Z) -> exists ?W s(?X, ?Z, ?W).
	s(?X, ?Y, ?Z), s(?Y, ?Z, ?W) -> q(?X, ?Y).
	t(?X) -> exists ?Z p(?X, ?Z).
	p(?X, ?Y), q(?X, ?Z) -> r(?X, ?Y, ?Z).
	r(?X, ?Y, ?Z) -> p(?X, ?Z).
`

func TestExample41GuardLattice(t *testing.T) {
	p := example41()
	// The paper states: "the program Π in Example 4.1 is
	// weakly-frontier-guarded but not weakly-guarded."
	if err := CheckWeaklyFrontierGuarded(p); err != nil {
		t.Errorf("Example 4.1 should be weakly-frontier-guarded: %v", err)
	}
	if err := CheckWeaklyGuarded(p); err == nil {
		t.Error("Example 4.1 should NOT be weakly-guarded (ρ1 has harmful ?X, ?Z in different atoms)")
	}
	if err := CheckGuarded(p); err == nil {
		t.Error("Example 4.1 should not be guarded")
	}
}

func TestCliqueProgramDialects(t *testing.T) {
	p := MustParse(cliqueProgramSrc)
	// Example 4.3 presents this as a TriQ 1.0 query: weakly-frontier-guarded…
	if err := CheckDialect(p, WeaklyFrontierGuarded); err != nil {
		t.Errorf("clique program should be TriQ 1.0: %v", err)
	}
	// …but it must be neither warded (the map-propagation rule joins the
	// ward with another atom on the harmful ?X)…
	if err := CheckWarded(p); err == nil {
		t.Error("clique program should NOT be warded")
	}
	// …nor have grounded negation (¬noclique(?X) with harmful ?X).
	if err := CheckGroundedNegation(p); err == nil {
		t.Error("clique program should NOT have grounded negation")
	}
	if err := CheckDialect(p, TriQLite); err == nil {
		t.Error("clique program must be rejected as TriQ-Lite 1.0")
	}
}

func TestExample610IsWarded(t *testing.T) {
	p := MustParse(example610Src)
	if err := CheckWarded(p); err != nil {
		t.Errorf("Example 6.10 program should be warded: %v", err)
	}
	if err := CheckDialect(p, TriQLite); err != nil {
		t.Errorf("Example 6.10 program should be TriQ-Lite 1.0: %v", err)
	}
}

func TestDatalogIsTriviallyWarded(t *testing.T) {
	// Section 6.3: "every Datalog program is a warded Datalog∃,¬sg,⊥ program."
	p := MustParse(`
		e(?X, ?Y) -> tc(?X, ?Y).
		e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z).
		tc(?X, ?X) -> cyclic(?X).
	`)
	if err := CheckDialect(p, TriQLite); err != nil {
		t.Errorf("plain Datalog should be TriQ-Lite 1.0: %v", err)
	}
	if err := CheckDialect(p, WeaklyFrontierGuarded); err != nil {
		t.Errorf("plain Datalog should be TriQ 1.0: %v", err)
	}
}

func TestGuardedCheck(t *testing.T) {
	guarded := MustParse(`p(?X, ?Y, ?Z), q(?X, ?Y) -> r(?X).`)
	if err := CheckGuarded(guarded); err != nil {
		t.Errorf("should be guarded: %v", err)
	}
	notGuarded := MustParse(`p(?X, ?Y), q(?Y, ?Z) -> r(?X).`)
	if err := CheckGuarded(notGuarded); err == nil {
		t.Error("should not be guarded: no atom has all of ?X ?Y ?Z")
	}
}

func TestFrontierGuardedCheck(t *testing.T) {
	// Frontier {?X, ?Z} spans two atoms → not frontier-guarded…
	p := MustParse(`p(?X, ?Y), q(?Y, ?Z) -> r(?X, ?Z).`)
	if err := CheckFrontierGuarded(p); err == nil {
		t.Error("should not be frontier-guarded")
	}
	// …but it is weakly-frontier-guarded (no affected positions at all).
	if err := CheckWeaklyFrontierGuarded(p); err != nil {
		t.Errorf("should be weakly-frontier-guarded: %v", err)
	}
	q := MustParse(`p(?X, ?Y), q(?Y, ?Z) -> r(?Y).`)
	if err := CheckFrontierGuarded(q); err != nil {
		t.Errorf("should be frontier-guarded: %v", err)
	}
}

func TestNearlyFrontierGuarded(t *testing.T) {
	// Transitive closure is not frontier-guarded but all variables are
	// harmless → nearly frontier-guarded (Section 6.2 motivation).
	p := MustParse(`
		e(?X, ?Y) -> tc(?X, ?Y).
		e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z).
	`)
	if err := CheckNearlyFrontierGuarded(p); err != nil {
		t.Errorf("transitive closure should be nearly frontier-guarded: %v", err)
	}
	// A non-frontier-guarded rule over affected positions breaks it.
	q := MustParse(`
		a(?X) -> exists ?Z e(?X, ?Z).
		e(?X, ?Y), e(?Y, ?Z) -> e(?X, ?Z).
	`)
	if err := CheckNearlyFrontierGuarded(q); err == nil {
		t.Error("existential transitive closure should not be nearly frontier-guarded")
	}
	// But it IS warded — the canonical separating example: the dangerous ?Z
	// sits in the ward e(?Y,?Z), which shares only the harmless ?Y.
	if err := CheckWarded(q); err != nil {
		t.Errorf("existential transitive closure should be warded: %v", err)
	}
}

func TestWardednessSharingCondition(t *testing.T) {
	// The ward may share only harmless variables with the rest of the body.
	// The swap rule makes both s-positions affected, so in the last rule ?X
	// is dangerous (its ward is s(?X,?Y)) and ?Y is harmful and shared —
	// which violates wardedness condition (2).
	p := MustParse(`
		a(?X) -> exists ?Z s(?X, ?Z).
		s(?X, ?Y) -> s(?Y, ?X).
		s(?X, ?Y), s(?Y, ?W) -> h(?X).
	`)
	if err := CheckWarded(p); err == nil {
		t.Error("harmful-variable sharing should break wardedness")
	}
	// …while the program is still weakly-frontier-guarded (TriQ 1.0): the
	// dangerous {?X} is covered by s(?X,?Y).
	if err := CheckWeaklyFrontierGuarded(p); err != nil {
		t.Errorf("sharing program should still be TriQ 1.0: %v", err)
	}
	// Anchoring ?Y with a ground atom makes it harmless and restores
	// wardedness.
	q := MustParse(`
		a(?X) -> exists ?Z s(?X, ?Z).
		s(?X, ?Y) -> s(?Y, ?X).
		s(?X, ?Y), s(?Y, ?W), a(?Y) -> h(?X).
	`)
	if err := CheckWarded(q); err != nil {
		t.Errorf("anchored variant should be warded: %v", err)
	}
}

func TestMinimalInteraction(t *testing.T) {
	// A warded program is trivially minimal-interaction when wards share
	// nothing harmful.
	p := MustParse(example610Src)
	if err := CheckWardedMinimalInteraction(p); err != nil {
		t.Errorf("Example 6.10 should satisfy minimal interaction: %v", err)
	}
	// One escaped harmful variable occurring once, in an atom whose other
	// variables are harmless, is allowed — this is the shape the ATM
	// reduction of Theorem 6.15 relies on (succ/state-cursor-symbol join).
	ok := MustParse(`
		d(?X) -> exists ?V cfg(?V).
		cfg(?V) -> exists ?V1 succ(?V, ?V1).
		succ(?V, ?V1), st(?S, ?V), lab(?S) -> st(?S, ?V1).
		lab(?S), cfg(?V) -> st(?S, ?V).
		d(?S) -> lab(?S).
	`)
	if err := CheckWardedMinimalInteraction(ok); err != nil {
		t.Errorf("single-escape program should satisfy minimal interaction: %v", err)
	}
	// It strictly extends wardedness: the same program is not warded…
	if err := CheckWarded(ok); err == nil {
		t.Error("single-escape program should NOT be warded (that is the separation)")
	}
	// …two escaped occurrences are not allowed. Ward s(?X,?Y) leaks the
	// harmful ?Y into both t(?Y) and u(?Y).
	bad := MustParse(`
		a(?X) -> exists ?Z s(?X, ?Z).
		s(?X, ?Y), t(?Y), u(?Y) -> keep(?X, ?Y).
		keep(?X, ?Y) -> s(?X, ?Y).
		s(?X, ?Y) -> t(?Y).
		s(?X, ?Y) -> u(?Y).
	`)
	if err := CheckWardedMinimalInteraction(bad); err == nil {
		t.Error("two escaped occurrences must violate minimal interaction")
	}
	// An escaped occurrence sitting next to another harmful variable also
	// violates condition (3).
	bad2 := MustParse(`
		a(?X) -> exists ?Z s(?X, ?Z).
		s(?X, ?Y) -> s(?Y, ?X).
		s(?X, ?Y), s(?Y, ?W) -> h(?X).
	`)
	if err := CheckWardedMinimalInteraction(bad2); err == nil {
		t.Error("escape into an atom with another harmful variable must be rejected")
	}
}

func TestGroundedNegation(t *testing.T) {
	// Negation over constants and harmless variables is grounded.
	p := MustParse(`
		a(?X), not b(?X, c0) -> d(?X).
	`)
	if err := CheckGroundedNegation(p); err != nil {
		t.Errorf("should be grounded: %v", err)
	}
	// Negation over a harmful variable is not.
	q := MustParse(`
		a(?X) -> exists ?Z s(?X, ?Z).
		s(?X, ?Y), not b(?Y) -> d(?X).
	`)
	if err := CheckGroundedNegation(q); err == nil {
		t.Error("negation over harmful ?Y should be rejected")
	}
}

func TestDialectStrings(t *testing.T) {
	ds := []Dialect{AnyDialect, Guarded, WeaklyGuarded, FrontierGuarded,
		WeaklyFrontierGuarded, NearlyFrontierGuarded, Warded, TriQLite,
		WardedMinimalInteraction, Dialect(99)}
	for _, d := range ds {
		if d.String() == "" {
			t.Errorf("Dialect(%d).String() empty", int(d))
		}
	}
}

func TestCheckDialectAll(t *testing.T) {
	p := MustParse(`p(?X, ?Y) -> q(?X).`)
	for _, d := range []Dialect{AnyDialect, Guarded, WeaklyGuarded, FrontierGuarded,
		WeaklyFrontierGuarded, NearlyFrontierGuarded, Warded, TriQLite,
		WardedMinimalInteraction} {
		if err := CheckDialect(p, d); err != nil {
			t.Errorf("trivial program should satisfy %v: %v", d, err)
		}
	}
	if err := CheckDialect(p, Dialect(99)); err == nil {
		t.Error("unknown dialect should error")
	}
	// Unstratified program fails every dialect.
	bad := MustParse(`p(?X), not q(?X) -> q(?X).`)
	if err := CheckDialect(bad, AnyDialect); err == nil {
		t.Error("unstratified program must be rejected")
	}
}

func TestFindWard(t *testing.T) {
	p := MustParse(example610Src)
	an := Analyze(p)
	// Rule ρ4 = p(?X,?Y), q(?X,?Z) → r(?X,?Y,?Z): dangerous {?X,?Y}
	// (p[1],p[2] affected via ρ3/ρ5; ?X… check ward is the p-atom).
	ward, ok := FindWard(an, p.Rules[3])
	if !ok {
		t.Fatal("ρ4 should have a ward")
	}
	if ward.Pred != "p" {
		t.Errorf("ward = %v, want the p-atom", ward)
	}
	// A rule with no dangerous variables needs no ward.
	dl := MustParse(`e(?X, ?Y) -> tc(?X, ?Y).`)
	if _, ok := FindWard(Analyze(dl), dl.Rules[0]); !ok {
		t.Error("Datalog rule should trivially pass FindWard")
	}
}
