package datalog

import (
	"strings"
	"testing"
)

func TestRuleAccessors(t *testing.T) {
	r := MustParse(`p(?X, ?Y), not n(?X) -> exists ?Z q(?X, ?Z).`).Rules[0]
	if got := len(r.Body()); got != 2 {
		t.Errorf("Body len = %d", got)
	}
	if got := r.BodyVars(); len(got) != 2 {
		t.Errorf("BodyVars = %v", got)
	}
	if got := r.HeadVars(); len(got) != 2 {
		t.Errorf("HeadVars = %v", got)
	}
	if got := r.ExistentialVars(); len(got) != 1 || got[0] != V("Z") {
		t.Errorf("ExistentialVars = %v", got)
	}
	if got := r.Frontier(); len(got) != 1 || got[0] != V("X") {
		t.Errorf("Frontier = %v", got)
	}
	if !r.HasExistential() {
		t.Error("HasExistential false")
	}
	dl := MustParse(`p(?X) -> q(?X).`).Rules[0]
	if dl.HasExistential() {
		t.Error("Datalog rule has no existentials")
	}
}

func TestRuleValidate(t *testing.T) {
	bad := []Rule{
		{Head: []Atom{NewAtom("q", V("X"))}},                                        // empty body
		{BodyPos: []Atom{NewAtom("p", V("X"))}},                                     // empty head
		{BodyPos: []Atom{NewAtom("p", N("z"))}, Head: []Atom{NewAtom("q")}},         // null in body
		{BodyPos: []Atom{NewAtom("p", V("X"))}, Head: []Atom{NewAtom("q", N("z"))}}, // null in head
		{ // unsafe negation
			BodyPos: []Atom{NewAtom("p", V("X"))},
			BodyNeg: []Atom{NewAtom("n", V("Y"))},
			Head:    []Atom{NewAtom("q", V("X"))},
		},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad rule %d validated: %v", i, r)
		}
	}
	good := NewRule(NewAtom("q", V("X")), NewAtom("p", V("X"), C("c")))
	if err := good.Validate(); err != nil {
		t.Errorf("good rule rejected: %v", err)
	}
}

func TestConstraintValidate(t *testing.T) {
	if err := (Constraint{}).Validate(); err == nil {
		t.Error("empty constraint should fail")
	}
	if err := (Constraint{Body: []Atom{NewAtom("p", N("z"))}}).Validate(); err == nil {
		t.Error("null in constraint should fail")
	}
	if err := (Constraint{Body: []Atom{NewAtom("p", V("X"))}}).Validate(); err != nil {
		t.Errorf("good constraint rejected: %v", err)
	}
}

func TestProgramAccessors(t *testing.T) {
	p := MustParse(`
		e(?X, ?Y) -> tc(?X, ?Y).
		tc(?X, ?Y), not bad(?X) -> good(?X).
		good(?X), good(?Y) -> false.
	`)
	if !p.HasNegation() {
		t.Error("HasNegation false")
	}
	if p.HasExistentials() {
		t.Error("HasExistentials true for Datalog program")
	}
	idb := p.IDBPredicates()
	if !idb["tc"] || !idb["good"] || idb["e"] || idb["bad"] {
		t.Errorf("IDBPredicates = %v", idb)
	}
	preds := p.Predicates()
	if len(preds) != 4 {
		t.Errorf("Predicates = %v", preds)
	}
	pos := p.Positive()
	if pos.HasNegation() || len(pos.Constraints) != 0 {
		t.Error("Positive should drop negation and constraints")
	}
	if len(pos.Rules) != len(p.Rules) {
		t.Error("Positive must keep all rules")
	}
}

func TestProgramCloneIndependence(t *testing.T) {
	p := MustParse(`p(?X) -> q(?X).`)
	q := p.Clone()
	q.Add(MustParse(`a(?X) -> b(?X).`).Rules[0])
	q.Rules[0].Head[0] = NewAtom("changed", V("X"))
	if len(p.Rules) != 1 {
		t.Error("Clone shares rule slice")
	}
	if p.Rules[0].Head[0].Pred != "q" {
		t.Error("Clone shares head atoms")
	}
}

func TestProgramMerge(t *testing.T) {
	p := MustParse(`p(?X) -> q(?X).`)
	q := MustParse(`a(?X) -> b(?X). a(?X), b(?X) -> false.`)
	p.Merge(q)
	if len(p.Rules) != 2 || len(p.Constraints) != 1 {
		t.Errorf("Merge result: %d rules, %d constraints", len(p.Rules), len(p.Constraints))
	}
}

func TestQueryValidate(t *testing.T) {
	q := NewQuery(nil, "out")
	if err := q.Validate(); err == nil {
		t.Error("nil program should fail")
	}
	q = NewQuery(MustParse(`p(?X) -> out(?X). out(?X), p(?X) -> false.`), "out")
	if err := q.Validate(); err == nil {
		t.Error("output predicate in constraint body should fail")
	}
	q = NewQuery(MustParse(`p(?X) -> out(?X).`), "out")
	if err := q.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if q.OutputArity() != 1 {
		t.Errorf("OutputArity = %d", q.OutputArity())
	}
	missing := NewQuery(MustParse(`p(?X) -> q(?X).`), "absent")
	if missing.OutputArity() != -1 {
		t.Error("absent output predicate should report arity -1")
	}
}

func TestProgramString(t *testing.T) {
	p := MustParse(`
		p(?X), not n(?X) -> exists ?Z q(?X, ?Z).
		p(?X), q(?X, ?Y) -> false.
	`)
	s := p.String()
	if !strings.Contains(s, "not n(?X)") || !strings.Contains(s, "exists ?Z") ||
		!strings.Contains(s, "-> false.") {
		t.Errorf("Program.String = %q", s)
	}
}
