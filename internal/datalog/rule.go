package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Rule is a Datalog^{∃,¬} rule
//
//	a1, …, an, ¬b1, …, ¬bm → ∃?Y1 … ∃?Yk c1, …, cj
//
// The paper defines single-head rules and notes (footnote 6) that multi-head
// rules are syntactic sugar; this type allows several head atoms and the
// normalizations of normalize.go expand them.
type Rule struct {
	BodyPos []Atom // body+(ρ)
	BodyNeg []Atom // body−(ρ)
	Head    []Atom
	// Provenance labels where the rule came from — for compiler-generated
	// rules, the construct that emitted it (e.g. the SPARQL operator kind in
	// internal/translate, or "ontology"). It is carried through the
	// normalizations, surfaces as RuleStats.Origin in chase stats, and backs
	// the per-operator attribution of the EXPLAIN report. Empty for
	// hand-written rules; never affects evaluation or equality of answers.
	Provenance string
}

// NewRule builds a positive rule body → head.
func NewRule(head Atom, body ...Atom) Rule {
	return Rule{BodyPos: body, Head: []Atom{head}}
}

// Body returns body(ρ) = body+(ρ) ∪ body−(ρ).
func (r Rule) Body() []Atom {
	out := make([]Atom, 0, len(r.BodyPos)+len(r.BodyNeg))
	out = append(out, r.BodyPos...)
	out = append(out, r.BodyNeg...)
	return out
}

// BodyVars returns var(body(ρ)) in first-occurrence order.
func (r Rule) BodyVars() []Term { return VarsOf(r.Body()) }

// HeadVars returns var(head(ρ)) in first-occurrence order.
func (r Rule) HeadVars() []Term { return VarsOf(r.Head) }

// ExistentialVars returns the head variables that do not occur in the body:
// the existentially quantified variables ?Y1 … ?Yk.
func (r Rule) ExistentialVars() []Term {
	bodyVars := make(map[Term]struct{})
	for _, v := range r.BodyVars() {
		bodyVars[v] = struct{}{}
	}
	var out []Term
	for _, v := range r.HeadVars() {
		if _, ok := bodyVars[v]; !ok {
			out = append(out, v)
		}
	}
	return out
}

// Frontier returns the body variables that are propagated to the head.
func (r Rule) Frontier() []Term {
	headVars := make(map[Term]struct{})
	for _, v := range r.HeadVars() {
		headVars[v] = struct{}{}
	}
	var out []Term
	for _, v := range r.BodyVars() {
		if _, ok := headVars[v]; ok {
			out = append(out, v)
		}
	}
	return out
}

// HasExistential reports whether the rule invents nulls.
func (r Rule) HasExistential() bool { return len(r.ExistentialVars()) > 0 }

// Validate checks the syntactic side conditions of Section 3.2:
// n ≥ 1; nulls may not occur in rules; var(body−) ⊆ var(body+); and the rule
// has at least one head atom.
func (r Rule) Validate() error {
	if len(r.BodyPos) == 0 {
		return fmt.Errorf("rule %v: at least one positive body atom is required", r)
	}
	if len(r.Head) == 0 {
		return fmt.Errorf("rule %v: a head atom is required", r)
	}
	for _, a := range append(r.Body(), r.Head...) {
		for _, t := range a.Args {
			if t.IsNull() {
				return fmt.Errorf("rule %v: labeled null %v may not occur in a rule", r, t)
			}
		}
	}
	pos := make(map[Term]struct{})
	for _, v := range VarsOf(r.BodyPos) {
		pos[v] = struct{}{}
	}
	for _, v := range VarsOf(r.BodyNeg) {
		if _, ok := pos[v]; !ok {
			return fmt.Errorf("rule %v: negated variable %v does not occur in the positive body", r, v)
		}
	}
	return nil
}

// String renders the rule in the surface syntax accepted by Parse.
func (r Rule) String() string {
	var b strings.Builder
	for i, a := range r.BodyPos {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	for _, a := range r.BodyNeg {
		b.WriteString(", not ")
		b.WriteString(a.String())
	}
	b.WriteString(" -> ")
	if ex := r.ExistentialVars(); len(ex) > 0 {
		b.WriteString("exists")
		for _, v := range ex {
			b.WriteByte(' ')
			b.WriteString(v.String())
		}
		b.WriteByte(' ')
	}
	for i, a := range r.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte('.')
	return b.String()
}

// Constraint is an assertion a1, …, an → ⊥.
type Constraint struct {
	Body []Atom
}

// Validate checks that the constraint has a nonempty body without nulls.
func (c Constraint) Validate() error {
	if len(c.Body) == 0 {
		return fmt.Errorf("constraint %v: at least one body atom is required", c)
	}
	for _, a := range c.Body {
		for _, t := range a.Args {
			if t.IsNull() {
				return fmt.Errorf("constraint %v: labeled null %v may not occur", c, t)
			}
		}
	}
	return nil
}

// String renders the constraint.
func (c Constraint) String() string {
	var b strings.Builder
	for i, a := range c.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteString(" -> false.")
	return b.String()
}

// Program is a finite set of Datalog^{∃,¬} rules and constraints — a
// Datalog^{∃,¬,⊥} program in the paper's terminology. The paper's ex(Π) is
// the Rules field alone.
type Program struct {
	Rules       []Rule
	Constraints []Constraint
}

// NewProgram builds a program from rules.
func NewProgram(rules ...Rule) *Program { return &Program{Rules: rules} }

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	q := &Program{
		Rules:       make([]Rule, len(p.Rules)),
		Constraints: make([]Constraint, len(p.Constraints)),
	}
	for i, r := range p.Rules {
		q.Rules[i] = Rule{
			BodyPos:    append([]Atom(nil), r.BodyPos...),
			BodyNeg:    append([]Atom(nil), r.BodyNeg...),
			Head:       append([]Atom(nil), r.Head...),
			Provenance: r.Provenance,
		}
	}
	copy(q.Constraints, p.Constraints)
	return q
}

// Add appends rules to the program.
func (p *Program) Add(rules ...Rule) { p.Rules = append(p.Rules, rules...) }

// AddConstraint appends constraints.
func (p *Program) AddConstraint(cs ...Constraint) {
	p.Constraints = append(p.Constraints, cs...)
}

// Merge appends all rules and constraints of q.
func (p *Program) Merge(qs ...*Program) *Program {
	for _, q := range qs {
		p.Rules = append(p.Rules, q.Rules...)
		p.Constraints = append(p.Constraints, q.Constraints...)
	}
	return p
}

// Validate checks every rule and constraint.
func (p *Program) Validate() error {
	for _, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	for _, c := range p.Constraints {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Schema returns sch(Π): the predicates occurring in the program with their
// arities. Using the same predicate at two arities is reported as an error.
func (p *Program) Schema() (map[string]int, error) {
	sch := make(map[string]int)
	record := func(a Atom) error {
		if ar, ok := sch[a.Pred]; ok && ar != a.Arity() {
			return fmt.Errorf("predicate %s used with arities %d and %d", a.Pred, ar, a.Arity())
		}
		sch[a.Pred] = a.Arity()
		return nil
	}
	for _, r := range p.Rules {
		for _, a := range append(r.Body(), r.Head...) {
			if err := record(a); err != nil {
				return nil, err
			}
		}
	}
	for _, c := range p.Constraints {
		for _, a := range c.Body {
			if err := record(a); err != nil {
				return nil, err
			}
		}
	}
	return sch, nil
}

// Predicates returns the sorted predicate names of sch(Π).
func (p *Program) Predicates() []string {
	sch, _ := p.Schema()
	out := make([]string, 0, len(sch))
	for pred := range sch {
		out = append(out, pred)
	}
	sort.Strings(out)
	return out
}

// IDBPredicates returns the predicates that occur in some rule head.
func (p *Program) IDBPredicates() map[string]bool {
	out := make(map[string]bool)
	for _, r := range p.Rules {
		for _, h := range r.Head {
			out[h.Pred] = true
		}
	}
	return out
}

// HasNegation reports whether any rule has a negated body atom.
func (p *Program) HasNegation() bool {
	for _, r := range p.Rules {
		if len(r.BodyNeg) > 0 {
			return true
		}
	}
	return false
}

// HasExistentials reports whether any rule invents nulls.
func (p *Program) HasExistentials() bool {
	for _, r := range p.Rules {
		if r.HasExistential() {
			return true
		}
	}
	return false
}

// Positive returns Π+ — the program obtained by dropping all negative body
// atoms (and keeping the rules otherwise unchanged). Constraints are dropped
// as well, matching the paper's use of ex(Π)+ for the guardedness checks.
func (p *Program) Positive() *Program {
	q := &Program{Rules: make([]Rule, len(p.Rules))}
	for i, r := range p.Rules {
		q.Rules[i] = Rule{BodyPos: r.BodyPos, Head: r.Head, Provenance: r.Provenance}
	}
	return q
}

// String renders the program, one rule per line, in the surface syntax.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	for _, c := range p.Constraints {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Query is a Datalog^{∃,¬s,⊥} query (Π, p): a program together with an output
// predicate that must not occur in any rule body.
type Query struct {
	Program *Program
	Output  string
}

// NewQuery builds a query.
func NewQuery(p *Program, output string) Query { return Query{Program: p, Output: output} }

// Validate checks the query conditions: the program is valid, stratified, and
// the output predicate does not occur in a rule body.
func (q Query) Validate() error {
	if q.Program == nil {
		return fmt.Errorf("query: nil program")
	}
	if err := q.Program.Validate(); err != nil {
		return err
	}
	if _, err := Stratify(q.Program); err != nil {
		return err
	}
	for _, r := range q.Program.Rules {
		for _, a := range r.Body() {
			if a.Pred == q.Output {
				return fmt.Errorf("query: output predicate %s occurs in the body of rule %v", q.Output, r)
			}
		}
	}
	for _, c := range q.Program.Constraints {
		for _, a := range c.Body {
			if a.Pred == q.Output {
				return fmt.Errorf("query: output predicate %s occurs in constraint %v", q.Output, c)
			}
		}
	}
	return nil
}

// OutputArity returns the arity of the output predicate, or -1 when the
// predicate does not occur in the program.
func (q Query) OutputArity() int {
	sch, err := q.Program.Schema()
	if err != nil {
		return -1
	}
	if ar, ok := sch[q.Output]; ok {
		return ar
	}
	return -1
}
