package datalog

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Parsers must return errors, never panic, on arbitrary input.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse(%q) panicked: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		_, _ = ParseAtom(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Mutations of a valid program must parse or error cleanly, and whatever
// parses must re-parse from its own rendering.
func TestParseMutationsRoundTrip(t *testing.T) {
	base := `p(?X), not n(?X) -> exists ?Z q(?X, ?Z). q(?X, ?Y), r(?Y) -> false.`
	rng := rand.New(rand.NewSource(11))
	chars := []byte(`pqnrxyz?,.()->! `)
	for i := 0; i < 400; i++ {
		b := []byte(base)
		for j := 0; j < 1+rng.Intn(3); j++ {
			b[rng.Intn(len(b))] = chars[rng.Intn(len(chars))]
		}
		prog, err := Parse(string(b))
		if err != nil {
			continue
		}
		again, err := Parse(prog.String())
		if err != nil {
			t.Fatalf("rendering of parsed mutation does not re-parse:\nsrc: %s\nrendered: %s\nerr: %v",
				string(b), prog, err)
		}
		if prog.String() != again.String() {
			t.Fatalf("round trip unstable:\n%s\nvs\n%s", prog, again)
		}
	}
}
