package datalog

import "fmt"

// This file implements the guardedness lattice of the paper: guarded,
// weakly-guarded, frontier-guarded, weakly-frontier-guarded (TriQ 1.0,
// Definition 4.2), nearly-frontier-guarded (Section 6.2), warded
// (TriQ-Lite 1.0, Definition 6.1), warded with minimal interaction
// (Section 6.4), and the grounded-negation condition of Datalog^{∃,¬sg,⊥}.
//
// Every check is performed on ex(Π)+ — the program without negative atoms
// and constraints — as the paper prescribes; candidate guards and wards are
// therefore always positive body atoms.

func covers(a Atom, vars map[Term]bool) bool {
	for v := range vars {
		if !a.HasVar(v) {
			return false
		}
	}
	return true
}

func someBodyAtomCovers(r Rule, vars map[Term]bool) bool {
	for _, a := range r.BodyPos {
		if covers(a, vars) {
			return true
		}
	}
	return false
}

// CheckGuarded reports whether Π is guarded: every rule has a positive body
// atom containing all body variables.
func CheckGuarded(p *Program) error {
	pos := p.Positive()
	for _, r := range pos.Rules {
		all := make(map[Term]bool)
		for _, v := range r.BodyVars() {
			all[v] = true
		}
		if !someBodyAtomCovers(r, all) {
			return fmt.Errorf("datalog: rule %v is not guarded: no body atom contains all body variables", r)
		}
	}
	return nil
}

// CheckWeaklyGuarded reports whether Π is weakly-guarded: every rule has a
// positive body atom containing all Π-harmful body variables.
func CheckWeaklyGuarded(p *Program) error {
	pos := p.Positive()
	an := Analyze(pos)
	for _, r := range pos.Rules {
		vc := an.Classify(r)
		if !someBodyAtomCovers(r, vc.Harmful) {
			return fmt.Errorf("datalog: rule %v is not weakly-guarded: no body atom contains the harmful variables %v", r, sortedVars(vc.Harmful))
		}
	}
	return nil
}

// CheckFrontierGuarded reports whether Π is frontier-guarded: every rule has
// a positive body atom containing all frontier variables.
func CheckFrontierGuarded(p *Program) error {
	pos := p.Positive()
	for _, r := range pos.Rules {
		fr := make(map[Term]bool)
		for _, v := range r.Frontier() {
			fr[v] = true
		}
		if !someBodyAtomCovers(r, fr) {
			return fmt.Errorf("datalog: rule %v is not frontier-guarded: no body atom contains the frontier %v", r, sortedVars(fr))
		}
	}
	return nil
}

// CheckWeaklyFrontierGuarded reports whether Π is weakly-frontier-guarded:
// every rule has a positive body atom containing all Π-dangerous variables.
// This is the defining condition of TriQ 1.0 (Definition 4.2).
func CheckWeaklyFrontierGuarded(p *Program) error {
	pos := p.Positive()
	an := Analyze(pos)
	for _, r := range pos.Rules {
		vc := an.Classify(r)
		if !someBodyAtomCovers(r, vc.Dangerous) {
			return fmt.Errorf("datalog: rule %v is not weakly-frontier-guarded: no body atom contains the dangerous variables %v", r, sortedVars(vc.Dangerous))
		}
	}
	return nil
}

// CheckNearlyFrontierGuarded reports whether Π is nearly frontier-guarded
// (Section 6.2): every rule is frontier-guarded or all its body variables
// are Π-harmless.
func CheckNearlyFrontierGuarded(p *Program) error {
	pos := p.Positive()
	an := Analyze(pos)
	for _, r := range pos.Rules {
		fr := make(map[Term]bool)
		for _, v := range r.Frontier() {
			fr[v] = true
		}
		if someBodyAtomCovers(r, fr) {
			continue
		}
		vc := an.Classify(r)
		if len(vc.Harmful) == 0 {
			continue
		}
		return fmt.Errorf("datalog: rule %v is not nearly frontier-guarded: it is not frontier-guarded and has harmful variables %v", r, sortedVars(vc.Harmful))
	}
	return nil
}

// FindWard returns a ward for the rule within the analyzed program: a
// positive body atom a with dangerous(ρ,Π) ⊆ var(a) that shares only
// harmless variables with the rest of the body (Definition 6.1). The second
// result is false when the rule has dangerous variables but no ward exists;
// when the rule has no dangerous variables it returns (Atom{}, true) with an
// empty atom, since no ward is needed.
func FindWard(an *Analysis, r Rule) (Atom, bool) {
	vc := an.Classify(r)
	if len(vc.Dangerous) == 0 {
		return Atom{}, true
	}
	for i, a := range r.BodyPos {
		if !covers(a, vc.Dangerous) {
			continue
		}
		if wardSharesOnlyHarmless(r, i, vc) {
			return a, true
		}
	}
	return Atom{}, false
}

func wardSharesOnlyHarmless(r Rule, wardIdx int, vc VarClass) bool {
	ward := r.BodyPos[wardIdx]
	for _, v := range ward.Vars() {
		if vc.Harmless[v] {
			continue
		}
		for j, b := range r.BodyPos {
			if j != wardIdx && b.HasVar(v) {
				return false
			}
		}
	}
	return true
}

// CheckWarded reports whether Π is warded (Definition 6.1): every rule either
// has no dangerous variables or has a ward.
func CheckWarded(p *Program) error {
	pos := p.Positive()
	an := Analyze(pos)
	for _, r := range pos.Rules {
		if _, ok := FindWard(an, r); !ok {
			vc := an.Classify(r)
			return fmt.Errorf("datalog: rule %v is not warded: dangerous variables %v admit no ward", r, sortedVars(vc.Dangerous))
		}
	}
	return nil
}

// CheckWardedMinimalInteraction reports whether Π is a warded program with
// minimal interaction (Section 6.4): warded, and for each rule with ward a,
// at most one harmful ward variable ?V escapes the ward; that variable occurs
// at most once outside the ward; and the atom b containing the escaped
// occurrence satisfies var(b) \ {?V} ⊆ harmless.
func CheckWardedMinimalInteraction(p *Program) error {
	pos := p.Positive()
	an := Analyze(pos)
	for _, r := range pos.Rules {
		vc := an.Classify(r)
		if len(vc.Dangerous) == 0 {
			// Without dangerous variables there is no ward and nothing to
			// check: the rule is trivially warded.
			continue
		}
		ok := false
		for i, a := range r.BodyPos {
			if !covers(a, vc.Dangerous) {
				continue
			}
			if minimalInteractionAt(r, i, vc) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("datalog: rule %v violates minimal interaction", r)
		}
	}
	return nil
}

func minimalInteractionAt(r Rule, wardIdx int, vc VarClass) bool {
	ward := r.BodyPos[wardIdx]
	// B = (var(ward) ∩ var(rest)) \ harmless.
	escaped := make(map[Term]int) // escaped harmful ward variable → #occurrences outside
	for _, v := range ward.Vars() {
		if vc.Harmless[v] {
			continue
		}
		for j, b := range r.BodyPos {
			if j == wardIdx {
				continue
			}
			for _, t := range b.Args {
				if t == v {
					escaped[v]++
				}
			}
		}
	}
	if len(escaped) > 1 {
		return false
	}
	for v, count := range escaped {
		if count > 1 {
			return false
		}
		// The atom containing the single escaped occurrence may otherwise
		// hold only constants and harmless variables.
		for j, b := range r.BodyPos {
			if j == wardIdx || !b.HasVar(v) {
				continue
			}
			for _, t := range b.Args {
				if t.IsVar() && t != v && !vc.Harmless[t] {
					return false
				}
			}
		}
	}
	return true
}

// CheckGroundedNegation reports whether every negated atom of the program
// uses only constants and ex(Π)+-harmless variables, i.e. whether the
// negation is grounded in the sense of Datalog^{∃,¬sg,⊥} (Section 6.1).
func CheckGroundedNegation(p *Program) error {
	an := Analyze(p.Positive())
	for _, r := range p.Rules {
		vc := an.Classify(r)
		for _, a := range r.BodyNeg {
			for _, t := range a.Args {
				if t.IsConst() {
					continue
				}
				if t.IsVar() && vc.Harmless[t] {
					continue
				}
				return fmt.Errorf("datalog: rule %v: negated atom %v uses term %v which is neither a constant nor harmless", r, a, t)
			}
		}
	}
	return nil
}

// Dialect identifies one of the paper's named program classes.
type Dialect int

const (
	// AnyDialect accepts every Datalog^{∃,¬s,⊥} program.
	AnyDialect Dialect = iota
	// Guarded is guarded Datalog^∃ extended with negation/constraints.
	Guarded
	// WeaklyGuarded requires all harmful variables in one atom.
	WeaklyGuarded
	// FrontierGuarded requires the frontier in one atom.
	FrontierGuarded
	// WeaklyFrontierGuarded is TriQ 1.0 (Definition 4.2).
	WeaklyFrontierGuarded
	// NearlyFrontierGuarded is the tractable class of Section 6.2.
	NearlyFrontierGuarded
	// Warded requires wards (Definition 6.1) but not grounded negation.
	Warded
	// TriQLite is warded + stratified grounded negation: TriQ-Lite 1.0.
	TriQLite
	// WardedMinimalInteraction is the ExpTime-hard relaxation of Section 6.4.
	WardedMinimalInteraction
)

func (d Dialect) String() string {
	switch d {
	case AnyDialect:
		return "Datalog[∃,¬s,⊥]"
	case Guarded:
		return "guarded"
	case WeaklyGuarded:
		return "weakly-guarded"
	case FrontierGuarded:
		return "frontier-guarded"
	case WeaklyFrontierGuarded:
		return "TriQ 1.0 (weakly-frontier-guarded)"
	case NearlyFrontierGuarded:
		return "nearly-frontier-guarded"
	case Warded:
		return "warded"
	case TriQLite:
		return "TriQ-Lite 1.0 (warded, grounded negation)"
	case WardedMinimalInteraction:
		return "warded with minimal interaction"
	default:
		return fmt.Sprintf("Dialect(%d)", int(d))
	}
}

// CheckDialect verifies that the program falls into the given dialect. It
// always also checks stratification (all of the paper's languages are
// stratified).
func CheckDialect(p *Program, d Dialect) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, err := Stratify(p); err != nil {
		return err
	}
	switch d {
	case AnyDialect:
		return nil
	case Guarded:
		return CheckGuarded(p)
	case WeaklyGuarded:
		return CheckWeaklyGuarded(p)
	case FrontierGuarded:
		return CheckFrontierGuarded(p)
	case WeaklyFrontierGuarded:
		return CheckWeaklyFrontierGuarded(p)
	case NearlyFrontierGuarded:
		return CheckNearlyFrontierGuarded(p)
	case Warded:
		return CheckWarded(p)
	case TriQLite:
		if err := CheckWarded(p); err != nil {
			return err
		}
		return CheckGroundedNegation(p)
	case WardedMinimalInteraction:
		if err := CheckWardedMinimalInteraction(p); err != nil {
			return err
		}
		return CheckGroundedNegation(p)
	default:
		return fmt.Errorf("datalog: unknown dialect %v", d)
	}
}
