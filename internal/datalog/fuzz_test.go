package datalog

import "testing"

// FuzzParseProgram asserts the rule parser's total-function contract: any
// input must produce a program or an error — never a panic — and a parsed
// program must survive String() → Parse() (the printer emits parseable
// syntax).
func FuzzParseProgram(f *testing.F) {
	f.Add("triple(?X, partOf, transportService) -> ts(?X).")
	f.Add("t(?X), ts(?Y) -> ∃Z conn(?X, ?Z).\nconn(?X, ?Y) -> query(?X, ?Y).")
	f.Add("p(?X), not q(?X) -> r(?X).")
	f.Add("p(?X), q(?X) -> ⊥.")
	f.Add("p(?X -> q(?X).")
	f.Add("->.")
	f.Add("\x00(\xff).")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		out := prog.String()
		if _, err := Parse(out); err != nil {
			t.Fatalf("re-parse of printed program failed: %v\ninput: %q\nprinted: %q", err, src, out)
		}
	})
}

// FuzzParseAtom covers the goal-atom parser used by the triq CLI's -prove
// flag, which feeds raw user input into ParseAtom.
func FuzzParseAtom(f *testing.F) {
	f.Add("p(a, b)")
	f.Add("triple(s, p, o)")
	f.Add("p()")
	f.Add("p(?X)")
	f.Add("p(a")
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseAtom(src)
	})
}
