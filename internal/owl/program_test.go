package owl

import (
	"testing"

	"repro/internal/chase"
	"repro/internal/datalog"
)

func TestProgramParsesAndIsTriQLite(t *testing.T) {
	p := Program()
	if len(p.Rules) == 0 || len(p.Constraints) != 2 {
		t.Fatalf("τ_owl2ql_core shape: %d rules, %d constraints", len(p.Rules), len(p.Constraints))
	}
	// Corollary 5.4 / 6.2: the fixed ontology program is warded (and has no
	// negation at all, so grounded negation holds vacuously).
	if err := datalog.CheckDialect(p, datalog.TriQLite); err != nil {
		t.Errorf("τ_owl2ql_core should be TriQ-Lite 1.0: %v", err)
	}
	if err := datalog.CheckDialect(p, datalog.WeaklyFrontierGuarded); err != nil {
		t.Errorf("τ_owl2ql_core should be TriQ 1.0: %v", err)
	}
	if p.HasNegation() {
		t.Error("τ_owl2ql_core has no negation")
	}
}

// runOntologyProgram chases τ_owl2ql_core over τ_db(o.ToGraph()).
func runOntologyProgram(t *testing.T, o *Ontology) *chase.GroundResult {
	t.Helper()
	db, err := chase.FromFacts(GraphToDB(o.ToGraph()))
	if err != nil {
		t.Fatal(err)
	}
	gr, err := chase.StableGround(db, Program(), chase.Options{MaxDepth: 20}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return gr
}

// TestProgramAgreesWithReasoner validates τ_owl2ql_core against the direct
// DL-LiteR reasoner: entailed memberships and roles over named individuals
// must coincide.
func TestProgramAgreesWithReasoner(t *testing.T) {
	ontologies := map[string]*Ontology{
		"animals": animalsOntology(),
		"coauthors": NewOntology().Add(
			SubClassOf(Some(Prop("is_coauthor_of")), Some(Prop("is_author_of"))),
			SubPropertyOf(Prop("is_coauthor_of"), Prop("knows")),
			PropertyAssertion("is_coauthor_of", "aho", "ullman"),
			PropertyAssertion("name", "aho", "alfred"),
		),
		"cyclic": NewOntology().Add(
			// a ⊑ ∃p, ∃p⁻ ⊑ a: the canonical model is infinite.
			SubClassOf(Atom("a"), Some(Prop("p"))),
			SubClassOf(Some(Inv("p")), Atom("a")),
			ClassAssertion(Atom("a"), "x"),
		),
		"inverse heavy": NewOntology().Add(
			SubPropertyOf(Inv("child_of"), Prop("parent_of")),
			PropertyAssertion("child_of", "bart", "homer"),
		),
	}
	for name, o := range ontologies {
		t.Run(name, func(t *testing.T) {
			r := NewReasoner(o)
			if !r.Consistent() {
				t.Fatal("test ontology should be consistent")
			}
			gr := runOntologyProgram(t, o)
			if gr.Inconsistent {
				t.Fatal("τ_owl2ql_core flagged a consistent ontology")
			}
			inds := o.Individuals()
			// Memberships: type(a, B) in the chase ⟺ reasoner membership.
			for _, a := range inds {
				for _, b := range o.BasicClasses() {
					chaseHas := gr.Ground.Has(datalog.NewAtom("type", datalog.C(a), datalog.C(b.URI())))
					oracle := r.Member(a, b)
					if chaseHas != oracle {
						t.Errorf("type(%s, %s): chase=%v oracle=%v", a, b.URI(), chaseHas, oracle)
					}
				}
			}
			// Roles: triple1(a, r, b) ⟺ entailed role.
			for _, a := range inds {
				for _, b := range inds {
					for _, p := range o.BasicProperties() {
						chaseHas := gr.Ground.Has(datalog.NewAtom("triple1",
							datalog.C(a), datalog.C(p.URI()), datalog.C(b)))
						oracle := r.Role(p, a, b)
						if chaseHas != oracle {
							t.Errorf("triple1(%s, %s, %s): chase=%v oracle=%v", a, p.URI(), b, chaseHas, oracle)
						}
					}
				}
			}
			// TBox closure: sc(b1, b2) ⟺ entailed subsumption.
			for _, b1 := range o.BasicClasses() {
				for _, b2 := range o.BasicClasses() {
					chaseHas := gr.Ground.Has(datalog.NewAtom("sc",
						datalog.C(b1.URI()), datalog.C(b2.URI())))
					oracle := r.SubClassOf(b1, b2)
					if chaseHas != oracle {
						t.Errorf("sc(%s, %s): chase=%v oracle=%v", b1.URI(), b2.URI(), chaseHas, oracle)
					}
				}
			}
		})
	}
}

func TestProgramDetectsInconsistency(t *testing.T) {
	bad := animalsOntology().Add(
		DisjointClasses(Atom("animal"), Atom("plant_material")),
		ClassAssertion(Atom("plant_material"), "rex"),
	)
	if NewReasoner(bad).Consistent() {
		t.Fatal("oracle should find the inconsistency")
	}
	gr := runOntologyProgram(t, bad)
	if !gr.Inconsistent {
		t.Error("τ_owl2ql_core should derive ⊥")
	}
	badP := NewOntology().Add(
		DisjointProperties(Prop("p"), Prop("q")),
		SubPropertyOf(Prop("p"), Prop("q")),
		PropertyAssertion("p", "x", "y"),
	)
	gr = runOntologyProgram(t, badP)
	if !gr.Inconsistent {
		t.Error("property disjointness should derive ⊥")
	}
}

func TestGraphToDB(t *testing.T) {
	o := NewOntology().Add(PropertyAssertion("p", "a", "b"))
	atoms := GraphToDB(o.ToGraph())
	found := false
	for _, a := range atoms {
		if a.Pred != "triple" || a.Arity() != 3 {
			t.Fatalf("bad db atom %v", a)
		}
		if a.Args[0] == datalog.C("a") && a.Args[1] == datalog.C("p") && a.Args[2] == datalog.C("b") {
			found = true
		}
	}
	if !found {
		t.Error("assertion triple missing from τ_db(G)")
	}
}
