package owl

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func TestPropertyAndClassURIs(t *testing.T) {
	p := Prop("eats")
	if p.URI() != "eats" || p.Inverted().URI() != "eats⁻" {
		t.Errorf("property URIs: %s / %s", p.URI(), p.Inverted().URI())
	}
	if p.Inverted().Inverted() != p {
		t.Error("double inversion should be identity")
	}
	if Atom("animal").URI() != "animal" {
		t.Error("atomic class URI wrong")
	}
	if Some(Prop("eats")).URI() != "∃eats" || Some(Inv("eats")).URI() != "∃eats⁻" {
		t.Errorf("restriction URIs wrong: %s %s", Some(Prop("eats")).URI(), Some(Inv("eats")).URI())
	}
	if !Some(Prop("p")).IsRestriction() || Atom("a").IsRestriction() {
		t.Error("IsRestriction wrong")
	}
}

// TestTable1AxiomTriples is experiment T1: the exact RDF triples of Table 1.
func TestTable1AxiomTriples(t *testing.T) {
	cases := []struct {
		ax   Axiom
		want rdf.Triple
	}{
		{SubClassOf(Atom("b1"), Atom("b2")), rdf.T("b1", "rdfs:subClassOf", "b2")},
		{SubClassOf(Some(Prop("p")), Some(Inv("q"))), rdf.T("∃p", "rdfs:subClassOf", "∃q⁻")},
		{SubPropertyOf(Prop("r1"), Prop("r2")), rdf.T("r1", "rdfs:subPropertyOf", "r2")},
		{SubPropertyOf(Inv("r1"), Prop("r2")), rdf.T("r1⁻", "rdfs:subPropertyOf", "r2")},
		{DisjointClasses(Atom("b1"), Atom("b2")), rdf.T("b1", "owl:disjointWith", "b2")},
		{DisjointProperties(Prop("r1"), Prop("r2")), rdf.T("r1", "owl:propertyDisjointWith", "r2")},
		{ClassAssertion(Atom("b"), "a"), rdf.T("a", "rdf:type", "b")},
		{PropertyAssertion("p", "a1", "a2"), rdf.T("a1", "p", "a2")},
	}
	for _, tc := range cases {
		if got := tc.ax.Triple(); got != tc.want {
			t.Errorf("%v → %v, want %v", tc.ax, got, tc.want)
		}
	}
}

func TestOntologyImplicitDeclarations(t *testing.T) {
	o := NewOntology().Add(
		SubClassOf(Atom("animal"), Some(Prop("eats"))),
		PropertyAssertion("name", "dbAho", "aho"),
	)
	if !contains(o.Classes, "animal") {
		t.Error("animal not declared")
	}
	if !contains(o.Properties, "eats") || !contains(o.Properties, "name") {
		t.Errorf("properties = %v", o.Properties)
	}
	inds := o.Individuals()
	if len(inds) != 2 || inds[0] != "aho" || inds[1] != "dbAho" {
		t.Errorf("Individuals = %v", inds)
	}
}

func TestBasicClassesAndProperties(t *testing.T) {
	o := NewOntology().AddClass("a").AddProperty("p")
	bc := o.BasicClasses()
	if len(bc) != 3 { // a, ∃p, ∃p⁻
		t.Errorf("BasicClasses = %v", bc)
	}
	bp := o.BasicProperties()
	if len(bp) != 2 { // p, p⁻
		t.Errorf("BasicProperties = %v", bp)
	}
}

func TestVocabularyTriples(t *testing.T) {
	// Section 5.2: every property contributes the ten vocabulary triples.
	o := NewOntology().AddProperty("p")
	g := o.ToGraph()
	want := []rdf.Triple{
		rdf.T("p", "rdf:type", "owl:ObjectProperty"),
		rdf.T("p⁻", "rdf:type", "owl:ObjectProperty"),
		rdf.T("p", "owl:inverseOf", "p⁻"),
		rdf.T("p⁻", "owl:inverseOf", "p"),
		rdf.T("∃p", "rdf:type", "owl:Restriction"),
		rdf.T("∃p⁻", "rdf:type", "owl:Restriction"),
		rdf.T("∃p", "owl:onProperty", "p"),
		rdf.T("∃p⁻", "owl:onProperty", "p⁻"),
		rdf.T("∃p", "owl:someValuesFrom", "owl:Thing"),
		rdf.T("∃p⁻", "owl:someValuesFrom", "owl:Thing"),
		rdf.T("∃p", "rdf:type", "owl:Class"),
		rdf.T("∃p⁻", "rdf:type", "owl:Class"),
	}
	for _, tr := range want {
		if !g.Has(tr) {
			t.Errorf("vocabulary triple missing: %v", tr)
		}
	}
	if g.Len() != len(want) {
		t.Errorf("graph has %d triples, want %d:\n%s", g.Len(), len(want), g)
	}
	// A class contributes its typing triple.
	o2 := NewOntology().AddClass("animal")
	if !o2.ToGraph().Has(rdf.T("animal", "rdf:type", "owl:Class")) {
		t.Error("class typing triple missing")
	}
}

func TestOntologyGraphRoundTrip(t *testing.T) {
	o := NewOntology().Add(
		SubClassOf(Atom("dog"), Atom("animal")),
		SubClassOf(Atom("animal"), Some(Prop("eats"))),
		SubClassOf(Some(Inv("eats")), Atom("plant_material")),
		SubPropertyOf(Prop("is_coauthor_of"), Prop("knows")),
		DisjointClasses(Atom("animal"), Atom("plant_material")),
		DisjointProperties(Prop("eats"), Prop("knows")),
		ClassAssertion(Atom("dog"), "rex"),
		PropertyAssertion("eats", "rex", "grass"),
	)
	g := o.ToGraph()
	back, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if o.String() != back.String() {
		t.Errorf("round trip changed axioms:\n%s\nvs\n%s", o, back)
	}
	if !back.ToGraph().Equal(g) {
		t.Error("re-serialized graph differs")
	}
}

func TestFromGraphPaperG3Style(t *testing.T) {
	// The restriction encoding of graph G3 (Section 2), with arbitrary
	// restriction node names r1/r2.
	g := rdf.NewGraph(
		rdf.T("r1", "rdf:type", "owl:Restriction"),
		rdf.T("r2", "rdf:type", "owl:Restriction"),
		rdf.T("r1", "owl:onProperty", "is_coauthor_of"),
		rdf.T("r2", "owl:onProperty", "is_author_of"),
		rdf.T("r1", "owl:someValuesFrom", "owl:Thing"),
		rdf.T("r2", "owl:someValuesFrom", "owl:Thing"),
		rdf.T("r1", "rdfs:subClassOf", "r2"),
		rdf.T("dbAho", "is_coauthor_of", "dbUllman"),
	)
	o, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReasoner(o)
	// dbAho is a coauthor, hence an author of something.
	if !r.Member("dbAho", Some(Prop("is_author_of"))) {
		t.Error("dbAho should be entailed to belong to ∃is_author_of")
	}
}

func TestFromGraphErrors(t *testing.T) {
	lit := rdf.NewGraph(rdf.Triple{
		S: rdf.NewIRI("a"), P: rdf.NewIRI("p"), O: rdf.NewLiteral("v"),
	})
	if _, err := FromGraph(lit); err == nil {
		t.Error("literal triple should be rejected")
	}
	orphan := rdf.NewGraph(
		rdf.T("r1", "rdf:type", "owl:Restriction"),
		rdf.T("r1", "rdfs:subClassOf", "b"),
	)
	if _, err := FromGraph(orphan); err == nil {
		t.Error("restriction without owl:onProperty should be rejected")
	}
	stray := rdf.NewGraph(rdf.T("x", "owl:onProperty", "p"))
	if _, err := FromGraph(stray); err == nil {
		t.Error("owl:onProperty on a non-restriction should be rejected")
	}
}

func TestAxiomStrings(t *testing.T) {
	axs := []Axiom{
		SubClassOf(Atom("a"), Atom("b")),
		SubPropertyOf(Prop("p"), Inv("q")),
		DisjointClasses(Atom("a"), Some(Prop("p"))),
		DisjointProperties(Prop("p"), Prop("q")),
		ClassAssertion(Atom("a"), "x"),
		PropertyAssertion("p", "x", "y"),
	}
	for _, ax := range axs {
		if ax.String() == "" {
			t.Errorf("empty String for %+v", ax)
		}
	}
	if !strings.Contains(axs[1].String(), "q⁻") {
		t.Errorf("inverse not rendered: %s", axs[1])
	}
}

func TestIsPositive(t *testing.T) {
	pos := NewOntology().Add(SubClassOf(Atom("a"), Atom("b")))
	if !pos.IsPositive() {
		t.Error("should be positive")
	}
	neg := NewOntology().Add(DisjointClasses(Atom("a"), Atom("b")))
	if neg.IsPositive() {
		t.Error("should not be positive")
	}
}
