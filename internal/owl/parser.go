package owl

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ParseOntology reads an ontology in the functional-style syntax of
// Section 5.2:
//
//	% herbivores
//	SubClassOf(dog, animal)
//	SubClassOf(animal, ∃eats)
//	SubClassOf(∃eats⁻, plant_material)
//	SubObjectPropertyOf(feeds_on, eats)
//	DisjointClasses(animal, plant_material)
//	DisjointObjectProperties(eats, knows)
//	ClassAssertion(dog, rex)
//	ObjectPropertyAssertion(eats, rex, grass)
//
// Basic classes are atomic names or ∃r restrictions; basic properties are p
// or p⁻ (inverse). Comments start with % or #. Statement order is free.
func ParseOntology(src string) (*Ontology, error) {
	o := NewOntology()
	p := &owlParser{in: src, line: 1}
	for {
		p.skip()
		if p.eof() {
			return o, nil
		}
		kw := p.word()
		if kw == "" {
			return nil, p.errf("expected axiom keyword at %q", p.rest())
		}
		args, err := p.args()
		if err != nil {
			return nil, err
		}
		ax, err := buildAxiom(kw, args)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		o.Add(ax)
	}
}

// MustParseOntology is ParseOntology, panicking on error.
func MustParseOntology(src string) *Ontology {
	o, err := ParseOntology(src)
	if err != nil {
		panic(err)
	}
	return o
}

func buildAxiom(kw string, args []string) (Axiom, error) {
	class := func(s string) Class {
		if strings.HasPrefix(s, "∃") {
			return Some(parseProperty(strings.TrimPrefix(s, "∃")))
		}
		return Atom(s)
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d arguments, got %d", kw, n, len(args))
		}
		return nil
	}
	switch kw {
	case "SubClassOf":
		if err := need(2); err != nil {
			return Axiom{}, err
		}
		return SubClassOf(class(args[0]), class(args[1])), nil
	case "SubObjectPropertyOf", "SubPropertyOf":
		if err := need(2); err != nil {
			return Axiom{}, err
		}
		return SubPropertyOf(parseProperty(args[0]), parseProperty(args[1])), nil
	case "DisjointClasses":
		if err := need(2); err != nil {
			return Axiom{}, err
		}
		return DisjointClasses(class(args[0]), class(args[1])), nil
	case "DisjointObjectProperties", "DisjointProperties":
		if err := need(2); err != nil {
			return Axiom{}, err
		}
		return DisjointProperties(parseProperty(args[0]), parseProperty(args[1])), nil
	case "ClassAssertion":
		if err := need(2); err != nil {
			return Axiom{}, err
		}
		if strings.HasPrefix(args[0], "∃") {
			// Assertions over restrictions are legal basic classes.
			return ClassAssertion(class(args[0]), args[1]), nil
		}
		return ClassAssertion(Atom(args[0]), args[1]), nil
	case "ObjectPropertyAssertion", "PropertyAssertion":
		if err := need(3); err != nil {
			return Axiom{}, err
		}
		p := parseProperty(args[0])
		if p.Inverse {
			return PropertyAssertion(p.Name, args[2], args[1]), nil
		}
		return PropertyAssertion(p.Name, args[1], args[2]), nil
	default:
		return Axiom{}, fmt.Errorf("unknown axiom keyword %q", kw)
	}
}

type owlParser struct {
	in   string
	pos  int
	line int
}

func (p *owlParser) eof() bool { return p.pos >= len(p.in) }

func (p *owlParser) rest() string {
	r := p.in[p.pos:]
	if len(r) > 25 {
		r = r[:25] + "…"
	}
	return r
}

func (p *owlParser) errf(format string, args ...any) error {
	return fmt.Errorf("owl: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *owlParser) skip() {
	for !p.eof() {
		c := p.in[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '%' || c == '#':
			for !p.eof() && p.in[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *owlParser) word() string {
	start := p.pos
	for !p.eof() {
		r, sz := utf8.DecodeRuneInString(p.in[p.pos:])
		if !isOntoNameRune(r) {
			break
		}
		p.pos += sz
	}
	return p.in[start:p.pos]
}

func isOntoNameRune(r rune) bool {
	switch r {
	case '_', ':', '-', '.', '/', '∃', '⁻':
		return true
	}
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (p *owlParser) args() ([]string, error) {
	p.skip()
	if p.eof() || p.in[p.pos] != '(' {
		return nil, p.errf("expected '(' at %q", p.rest())
	}
	p.pos++
	var out []string
	for {
		p.skip()
		w := p.word()
		if w == "" {
			return nil, p.errf("expected argument at %q", p.rest())
		}
		out = append(out, w)
		p.skip()
		if p.eof() {
			return nil, p.errf("unterminated axiom")
		}
		switch p.in[p.pos] {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return out, nil
		default:
			return nil, p.errf("expected ',' or ')' at %q", p.rest())
		}
	}
}
