package owl

import "testing"

func TestParseOntologyRoundTrip(t *testing.T) {
	o := NewOntology().Add(
		SubClassOf(Atom("dog"), Atom("animal")),
		SubClassOf(Atom("animal"), Some(Prop("eats"))),
		SubClassOf(Some(Inv("eats")), Atom("plant_material")),
		SubPropertyOf(Prop("feeds_on"), Prop("eats")),
		SubPropertyOf(Inv("child_of"), Prop("parent_of")),
		DisjointClasses(Atom("animal"), Atom("plant_material")),
		DisjointProperties(Prop("eats"), Prop("knows")),
		ClassAssertion(Atom("dog"), "rex"),
		ClassAssertion(Some(Prop("eats")), "bess"),
		PropertyAssertion("eats", "rex", "grass"),
	)
	// The ontology renders in functional-style syntax; parse it back.
	back, err := ParseOntology(o.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != o.String() {
		t.Errorf("round trip changed axioms:\n%s\nvs\n%s", o, back)
	}
}

func TestParseOntologyFeatures(t *testing.T) {
	o := MustParseOntology(`
		% herbivores example
		SubClassOf(animal, ∃eats)   # inline comment
		ObjectPropertyAssertion(eats⁻, grass, rex)
		SubPropertyOf(p, q)
		DisjointProperties(p, q)
	`)
	if len(o.Axioms) != 4 {
		t.Fatalf("axioms = %d:\n%s", len(o.Axioms), o)
	}
	// The inverse assertion is normalized: eats(rex, grass).
	found := false
	for _, ax := range o.Axioms {
		if ax.Kind == PropertyAssertionKind && ax.P1.Name == "eats" &&
			ax.A1 == "rex" && ax.A2 == "grass" {
			found = true
		}
	}
	if !found {
		t.Errorf("inverse assertion not normalized:\n%s", o)
	}
}

func TestParseOntologyErrors(t *testing.T) {
	bad := []string{
		`Nonsense(a, b)`,
		`SubClassOf(a)`,
		`SubClassOf(a, b, c)`,
		`SubClassOf(a, b`,
		`SubClassOf a, b)`,
		`SubClassOf(, b)`,
		`SubClassOf(a; b)`,
		`ObjectPropertyAssertion(p, a)`,
	}
	for _, src := range bad {
		if _, err := ParseOntology(src); err == nil {
			t.Errorf("ParseOntology(%q) succeeded, want error", src)
		}
	}
}

func TestMustParseOntologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseOntology should panic")
		}
	}()
	MustParseOntology(`Broken(`)
}
