package owl

import (
	"testing"
	"testing/quick"
)

func TestOntologyParserNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ParseOntology(%q) panicked: %v", s, r)
			}
		}()
		_, _ = ParseOntology(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	full := `SubClassOf(∃eats⁻, plant_material) % c` + "\nObjectPropertyAssertion(eats, rex, grass)"
	for i := 0; i <= len(full); i++ {
		_, _ = ParseOntology(full[:i])
	}
}
