package owl

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// This file implements the ontology ⇄ RDF mapping of Section 5.2: the
// vocabulary triples declaring classes, properties, inverses, and the ∃r
// restrictions, plus the axiom triples of Table 1.
//
// Note: the paper writes owl:someValueFrom in the Section 5.2 program and
// owl:someValuesFrom in the Section 2 examples; this implementation
// standardizes on the correct OWL spelling owl:someValuesFrom.

// ToGraph serializes the ontology as an RDF graph.
func (o *Ontology) ToGraph() *rdf.Graph {
	g := rdf.NewGraph()
	for _, a := range o.Classes {
		g.Add(rdf.T(a, rdf.RDFType, rdf.OWLClass))
	}
	for _, name := range o.Properties {
		p, pi := Prop(name), Inv(name)
		g.Add(
			rdf.T(p.URI(), rdf.RDFType, rdf.OWLObjectProperty),
			rdf.T(pi.URI(), rdf.RDFType, rdf.OWLObjectProperty),
			rdf.T(p.URI(), rdf.OWLInverseOf, pi.URI()),
			rdf.T(pi.URI(), rdf.OWLInverseOf, p.URI()),
		)
		for _, r := range []Property{p, pi} {
			e := Some(r)
			g.Add(
				rdf.T(e.URI(), rdf.RDFType, rdf.OWLRestriction),
				rdf.T(e.URI(), rdf.OWLOnProperty, r.URI()),
				rdf.T(e.URI(), rdf.OWLSomeValuesFrom, rdf.OWLThing),
				rdf.T(e.URI(), rdf.RDFType, rdf.OWLClass),
			)
		}
	}
	for _, ax := range o.Axioms {
		g.Add(ax.Triple())
	}
	return g
}

// Triple renders the axiom as its RDF triple per Table 1.
func (ax Axiom) Triple() rdf.Triple {
	switch ax.Kind {
	case SubClassOfKind:
		return rdf.T(ax.C1.URI(), rdf.RDFSSubClassOf, ax.C2.URI())
	case SubPropertyOfKind:
		return rdf.T(ax.P1.URI(), rdf.RDFSSubPropertyOf, ax.P2.URI())
	case DisjointClassesKind:
		return rdf.T(ax.C1.URI(), rdf.OWLDisjointWith, ax.C2.URI())
	case DisjointPropertiesKind:
		return rdf.T(ax.P1.URI(), rdf.OWLPropertyDisjointWith, ax.P2.URI())
	case ClassAssertionKind:
		return rdf.T(ax.A1, rdf.RDFType, ax.C1.URI())
	case PropertyAssertionKind:
		return rdf.T(ax.A1, ax.P1.Name, ax.A2)
	default:
		panic(fmt.Sprintf("owl: unknown axiom kind %d", ax.Kind))
	}
}

// FromGraph parses an RDF graph that represents an OWL 2 QL core ontology
// back into its axioms. Triples it cannot interpret are reported as an
// error, so tests can assert lossless round-trips.
func FromGraph(g *rdf.Graph) (*Ontology, error) {
	o := NewOntology()
	restrictions := make(map[string]Property) // restriction URI → property
	isProperty := make(map[string]bool)

	// Pass 1: vocabulary.
	typeIRI := rdf.NewIRI(rdf.RDFType)
	for _, t := range g.Match(nil, &typeIRI, nil) {
		switch t.O.Value {
		case rdf.OWLObjectProperty:
			isProperty[t.S.Value] = true
			if !strings.HasSuffix(t.S.Value, "⁻") {
				o.AddProperty(t.S.Value)
			}
		case rdf.OWLRestriction:
			restrictions[t.S.Value] = Property{}
		}
	}
	onPropIRI := rdf.NewIRI(rdf.OWLOnProperty)
	for _, t := range g.Match(nil, &onPropIRI, nil) {
		if _, ok := restrictions[t.S.Value]; !ok {
			return nil, fmt.Errorf("owl: onProperty on non-restriction %s", t.S.Value)
		}
		restrictions[t.S.Value] = parseProperty(t.O.Value)
	}
	for _, t := range g.Match(nil, &typeIRI, nil) {
		if t.O.Value == rdf.OWLClass {
			if _, isRestr := restrictions[t.S.Value]; !isRestr {
				o.AddClass(t.S.Value)
			}
		}
	}

	classTerm := func(uri string) (Class, error) {
		if p, ok := restrictions[uri]; ok {
			if p.Name == "" {
				return Class{}, fmt.Errorf("owl: restriction %s has no owl:onProperty", uri)
			}
			return Some(p), nil
		}
		return Atom(uri), nil
	}

	// Pass 2: axioms.
	for _, t := range g.Triples() {
		if !t.S.IsIRI() || !t.P.IsIRI() || !t.O.IsIRI() {
			return nil, fmt.Errorf("owl: non-URI triple %v", t)
		}
		switch t.P.Value {
		case rdf.RDFSSubClassOf:
			c1, err := classTerm(t.S.Value)
			if err != nil {
				return nil, err
			}
			c2, err := classTerm(t.O.Value)
			if err != nil {
				return nil, err
			}
			o.Add(SubClassOf(c1, c2))
		case rdf.RDFSSubPropertyOf:
			o.Add(SubPropertyOf(parseProperty(t.S.Value), parseProperty(t.O.Value)))
		case rdf.OWLDisjointWith:
			c1, err := classTerm(t.S.Value)
			if err != nil {
				return nil, err
			}
			c2, err := classTerm(t.O.Value)
			if err != nil {
				return nil, err
			}
			o.Add(DisjointClasses(c1, c2))
		case rdf.OWLPropertyDisjointWith:
			o.Add(DisjointProperties(parseProperty(t.S.Value), parseProperty(t.O.Value)))
		case rdf.RDFType:
			switch t.O.Value {
			case rdf.OWLClass, rdf.OWLObjectProperty, rdf.OWLRestriction:
				// vocabulary, handled in pass 1
			default:
				c, err := classTerm(t.O.Value)
				if err != nil {
					return nil, err
				}
				o.Add(ClassAssertion(c, t.S.Value))
			}
		case rdf.OWLOnProperty, rdf.OWLSomeValuesFrom, rdf.OWLInverseOf:
			// vocabulary, handled in pass 1
		default:
			if !isProperty[t.P.Value] && !contains(o.Properties, t.P.Value) {
				// A bare data triple over an undeclared property: accept it
				// as a property assertion, declaring the property — RDF
				// graphs in the wild omit vocabulary triples for plain data.
				o.AddProperty(t.P.Value)
			}
			p := parseProperty(t.P.Value)
			if p.Inverse {
				o.Add(PropertyAssertion(p.Name, t.O.Value, t.S.Value))
			} else {
				o.Add(PropertyAssertion(p.Name, t.S.Value, t.O.Value))
			}
		}
	}
	return o, nil
}

func parseProperty(uri string) Property {
	if strings.HasSuffix(uri, "⁻") {
		return Inv(strings.TrimSuffix(uri, "⁻"))
	}
	return Prop(uri)
}
