// Package owl implements the OWL 2 QL core ontology language of Section 5.2
// of the paper — the fragment corresponding to the description logic
// DL-LiteR: basic properties (p, p⁻), basic classes (a, ∃r), the six axiom
// forms of Table 1, the ontology ⇄ RDF graph mapping (including the
// vocabulary triples of Section 5.2), a direct DL-LiteR saturation reasoner
// used as an independent entailment oracle, and the paper's fixed
// Datalog^{∃,⊥} program τ_owl2ql_core that encodes the OWL 2 QL core direct
// semantics entailment regime.
package owl

import (
	"fmt"
	"sort"
	"strings"
)

// Property is a basic property over the vocabulary: a property name p or its
// inverse p⁻.
type Property struct {
	Name    string
	Inverse bool
}

// Prop returns the basic property p.
func Prop(name string) Property { return Property{Name: name} }

// Inv returns the basic property p⁻.
func Inv(name string) Property { return Property{Name: name, Inverse: true} }

// Inverted returns the inverse of the property.
func (p Property) Inverted() Property { return Property{Name: p.Name, Inverse: !p.Inverse} }

// URI renders the basic property as a URI: p or p⁻ (the paper treats both as
// plain URIs, pairwise distinct).
func (p Property) URI() string {
	if p.Inverse {
		return p.Name + "⁻"
	}
	return p.Name
}

// String renders the property.
func (p Property) String() string { return p.URI() }

// Class is a basic class over the vocabulary: an atomic class a, or an
// existential restriction ∃r over a basic property r.
type Class struct {
	// Atomic holds the class name when the class is atomic.
	Atomic string
	// Exists is set for ∃r classes.
	Exists *Property
}

// Atom returns the atomic class a.
func Atom(name string) Class { return Class{Atomic: name} }

// Some returns the basic class ∃r.
func Some(r Property) Class { return Class{Exists: &r} }

// IsRestriction reports whether the class is of the form ∃r.
func (c Class) IsRestriction() bool { return c.Exists != nil }

// URI renders the basic class as a URI: a, ∃p, or ∃p⁻.
func (c Class) URI() string {
	if c.Exists != nil {
		return "∃" + c.Exists.URI()
	}
	return c.Atomic
}

// String renders the class.
func (c Class) String() string { return c.URI() }

// AxiomKind enumerates the six OWL 2 QL core axiom forms of Table 1.
type AxiomKind int

const (
	// SubClassOfKind is SubClassOf(b1, b2).
	SubClassOfKind AxiomKind = iota
	// SubPropertyOfKind is SubObjectPropertyOf(r1, r2).
	SubPropertyOfKind
	// DisjointClassesKind is DisjointClasses(b1, b2).
	DisjointClassesKind
	// DisjointPropertiesKind is DisjointObjectProperties(r1, r2).
	DisjointPropertiesKind
	// ClassAssertionKind is ClassAssertion(b, a).
	ClassAssertionKind
	// PropertyAssertionKind is ObjectPropertyAssertion(p, a1, a2).
	PropertyAssertionKind
)

// Axiom is one OWL 2 QL core axiom. Only the fields relevant to its kind are
// set.
type Axiom struct {
	Kind AxiomKind
	// C1, C2 are the classes of SubClassOf / DisjointClasses, and C1 is the
	// class of ClassAssertion.
	C1, C2 Class
	// P1, P2 are the properties of SubObjectPropertyOf /
	// DisjointObjectProperties; P1.Name is the property of
	// ObjectPropertyAssertion (assertions use property names, per Table 1).
	P1, P2 Property
	// A1, A2 are the individuals of assertions.
	A1, A2 string
}

// SubClassOf builds SubClassOf(b1, b2).
func SubClassOf(b1, b2 Class) Axiom { return Axiom{Kind: SubClassOfKind, C1: b1, C2: b2} }

// SubPropertyOf builds SubObjectPropertyOf(r1, r2).
func SubPropertyOf(r1, r2 Property) Axiom {
	return Axiom{Kind: SubPropertyOfKind, P1: r1, P2: r2}
}

// DisjointClasses builds DisjointClasses(b1, b2).
func DisjointClasses(b1, b2 Class) Axiom {
	return Axiom{Kind: DisjointClassesKind, C1: b1, C2: b2}
}

// DisjointProperties builds DisjointObjectProperties(r1, r2).
func DisjointProperties(r1, r2 Property) Axiom {
	return Axiom{Kind: DisjointPropertiesKind, P1: r1, P2: r2}
}

// ClassAssertion builds ClassAssertion(b, a).
func ClassAssertion(b Class, a string) Axiom {
	return Axiom{Kind: ClassAssertionKind, C1: b, A1: a}
}

// PropertyAssertion builds ObjectPropertyAssertion(p, a1, a2).
func PropertyAssertion(p string, a1, a2 string) Axiom {
	return Axiom{Kind: PropertyAssertionKind, P1: Prop(p), A1: a1, A2: a2}
}

// String renders the axiom in the functional-style syntax of Section 5.2.
func (ax Axiom) String() string {
	switch ax.Kind {
	case SubClassOfKind:
		return fmt.Sprintf("SubClassOf(%s, %s)", ax.C1, ax.C2)
	case SubPropertyOfKind:
		return fmt.Sprintf("SubObjectPropertyOf(%s, %s)", ax.P1, ax.P2)
	case DisjointClassesKind:
		return fmt.Sprintf("DisjointClasses(%s, %s)", ax.C1, ax.C2)
	case DisjointPropertiesKind:
		return fmt.Sprintf("DisjointObjectProperties(%s, %s)", ax.P1, ax.P2)
	case ClassAssertionKind:
		return fmt.Sprintf("ClassAssertion(%s, %s)", ax.C1, ax.A1)
	case PropertyAssertionKind:
		return fmt.Sprintf("ObjectPropertyAssertion(%s, %s, %s)", ax.P1.Name, ax.A1, ax.A2)
	default:
		return fmt.Sprintf("Axiom(kind=%d)", int(ax.Kind))
	}
}

// Ontology is an OWL 2 QL core ontology: a vocabulary Σ of classes and
// properties plus a set of axioms over Σ.
type Ontology struct {
	Classes    []string
	Properties []string
	Axioms     []Axiom
}

// NewOntology builds an empty ontology.
func NewOntology() *Ontology { return &Ontology{} }

// AddClass declares atomic classes.
func (o *Ontology) AddClass(names ...string) *Ontology {
	for _, n := range names {
		if !contains(o.Classes, n) {
			o.Classes = append(o.Classes, n)
		}
	}
	return o
}

// AddProperty declares properties.
func (o *Ontology) AddProperty(names ...string) *Ontology {
	for _, n := range names {
		if !contains(o.Properties, n) {
			o.Properties = append(o.Properties, n)
		}
	}
	return o
}

// Add appends axioms, implicitly declaring any mentioned classes and
// properties.
func (o *Ontology) Add(axioms ...Axiom) *Ontology {
	for _, ax := range axioms {
		o.declareAxiom(ax)
		o.Axioms = append(o.Axioms, ax)
	}
	return o
}

func (o *Ontology) declareAxiom(ax Axiom) {
	declClass := func(c Class) {
		if c.IsRestriction() {
			o.AddProperty(c.Exists.Name)
		} else if c.Atomic != "" {
			o.AddClass(c.Atomic)
		}
	}
	switch ax.Kind {
	case SubClassOfKind, DisjointClassesKind:
		declClass(ax.C1)
		declClass(ax.C2)
	case SubPropertyOfKind, DisjointPropertiesKind:
		o.AddProperty(ax.P1.Name, ax.P2.Name)
	case ClassAssertionKind:
		declClass(ax.C1)
	case PropertyAssertionKind:
		o.AddProperty(ax.P1.Name)
	}
}

// IsPositive reports whether the ontology contains no disjointness axioms
// (the "positive" ontologies of Definition 6.3).
func (o *Ontology) IsPositive() bool {
	for _, ax := range o.Axioms {
		if ax.Kind == DisjointClassesKind || ax.Kind == DisjointPropertiesKind {
			return false
		}
	}
	return true
}

// Individuals returns the sorted individuals mentioned in assertions.
func (o *Ontology) Individuals() []string {
	seen := make(map[string]bool)
	for _, ax := range o.Axioms {
		switch ax.Kind {
		case ClassAssertionKind:
			seen[ax.A1] = true
		case PropertyAssertionKind:
			seen[ax.A1] = true
			seen[ax.A2] = true
		}
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// BasicClasses returns every basic class over the vocabulary: the atomic
// classes plus ∃p and ∃p⁻ for every property.
func (o *Ontology) BasicClasses() []Class {
	var out []Class
	for _, c := range o.Classes {
		out = append(out, Atom(c))
	}
	for _, p := range o.Properties {
		out = append(out, Some(Prop(p)), Some(Inv(p)))
	}
	return out
}

// BasicProperties returns every basic property: p and p⁻ per property.
func (o *Ontology) BasicProperties() []Property {
	var out []Property
	for _, p := range o.Properties {
		out = append(out, Prop(p), Inv(p))
	}
	return out
}

// String renders the ontology in functional-style syntax, sorted.
func (o *Ontology) String() string {
	lines := make([]string, 0, len(o.Axioms))
	for _, ax := range o.Axioms {
		lines = append(lines, ax.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func contains(xs []string, x string) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}
