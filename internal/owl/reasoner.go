package owl

import (
	"sort"

	"repro/internal/rdf"
)

// Reasoner is a direct DL-LiteR saturation reasoner for OWL 2 QL core
// ontologies. It computes the reflexive-transitive subsumption closures of
// basic classes and properties, the entailed role assertions and class
// memberships of named individuals, and checks consistency. The paper's
// entailment relation G ⊨ t (Section 5.2, after [19, 28, 13]) is exposed as
// Entails. The reasoner is used as an independent oracle against the
// Datalog-based encoding τ_owl2ql_core in the test-suite.
type Reasoner struct {
	o *Ontology
	// subClass[c] = the set of (URIs of) superclasses of basic class c,
	// reflexive-transitively closed.
	subClass map[string]map[string]bool
	// subProp[r] = superproperties of basic property r, closed.
	subProp map[string]map[string]bool
	// roles[r] = entailed role pairs of basic property r.
	roles map[string]map[[2]string]bool
	// memb[a] = entailed basic classes of individual a (up-closed).
	memb map[string]map[string]bool

	consistent bool
}

// NewReasoner saturates the ontology.
func NewReasoner(o *Ontology) *Reasoner {
	r := &Reasoner{
		o:        o,
		subClass: make(map[string]map[string]bool),
		subProp:  make(map[string]map[string]bool),
		roles:    make(map[string]map[[2]string]bool),
		memb:     make(map[string]map[string]bool),
	}
	r.closeProperties()
	r.closeClasses()
	r.materializeRoles()
	r.materializeMemberships()
	r.consistent = r.checkConsistency()
	return r
}

func addEdge(m map[string]map[string]bool, from, to string) {
	if m[from] == nil {
		m[from] = make(map[string]bool)
	}
	m[from][to] = true
}

func transitiveClose(m map[string]map[string]bool) {
	for changed := true; changed; {
		changed = false
		for x, sup := range m {
			for y := range sup {
				for z := range m[y] {
					if !m[x][z] {
						m[x][z] = true
						changed = true
					}
				}
			}
		}
	}
}

func (r *Reasoner) closeProperties() {
	for _, p := range r.o.BasicProperties() {
		addEdge(r.subProp, p.URI(), p.URI())
	}
	for _, ax := range r.o.Axioms {
		if ax.Kind == SubPropertyOfKind {
			addEdge(r.subProp, ax.P1.URI(), ax.P2.URI())
			// r1 ⊑ r2 entails r1⁻ ⊑ r2⁻.
			addEdge(r.subProp, ax.P1.Inverted().URI(), ax.P2.Inverted().URI())
		}
	}
	transitiveClose(r.subProp)
}

func (r *Reasoner) closeClasses() {
	for _, c := range r.o.BasicClasses() {
		addEdge(r.subClass, c.URI(), c.URI())
	}
	for _, ax := range r.o.Axioms {
		if ax.Kind == SubClassOfKind {
			addEdge(r.subClass, ax.C1.URI(), ax.C2.URI())
		}
	}
	// r1 ⊑ r2 entails ∃r1 ⊑ ∃r2.
	for p, sups := range r.subProp {
		for q := range sups {
			addEdge(r.subClass, "∃"+p, "∃"+q)
		}
	}
	transitiveClose(r.subClass)
}

func (r *Reasoner) materializeRoles() {
	for _, ax := range r.o.Axioms {
		if ax.Kind != PropertyAssertionKind {
			continue
		}
		p := ax.P1
		for q := range r.subProp[p.URI()] {
			r.addRole(q, ax.A1, ax.A2)
		}
		for q := range r.subProp[p.Inverted().URI()] {
			r.addRole(q, ax.A2, ax.A1)
		}
	}
}

func (r *Reasoner) addRole(propURI, a, b string) {
	if r.roles[propURI] == nil {
		r.roles[propURI] = make(map[[2]string]bool)
	}
	r.roles[propURI][[2]string{a, b}] = true
}

func (r *Reasoner) materializeMemberships() {
	add := func(ind string, classURI string) {
		if r.memb[ind] == nil {
			r.memb[ind] = make(map[string]bool)
		}
		for sup := range r.subClass[classURI] {
			r.memb[ind][sup] = true
		}
		r.memb[ind][classURI] = true
	}
	for _, ax := range r.o.Axioms {
		if ax.Kind == ClassAssertionKind {
			add(ax.A1, ax.C1.URI())
		}
	}
	for propURI, pairs := range r.roles {
		for pair := range pairs {
			add(pair[0], "∃"+propURI)
		}
	}
}

func (r *Reasoner) checkConsistency() bool {
	for _, ax := range r.o.Axioms {
		switch ax.Kind {
		case DisjointClassesKind:
			for _, classes := range r.memb {
				if classes[ax.C1.URI()] && classes[ax.C2.URI()] {
					return false
				}
			}
		case DisjointPropertiesKind:
			for pair := range r.roles[ax.P1.URI()] {
				if r.roles[ax.P2.URI()][pair] {
					return false
				}
			}
		}
	}
	return true
}

// Consistent reports whether the ontology is satisfiable.
func (r *Reasoner) Consistent() bool { return r.consistent }

// SubClassOf reports whether b1 ⊑ b2 is entailed.
func (r *Reasoner) SubClassOf(b1, b2 Class) bool {
	return r.subClass[b1.URI()][b2.URI()]
}

// SubPropertyOf reports whether r1 ⊑ r2 is entailed.
func (r *Reasoner) SubPropertyOf(r1, r2 Property) bool {
	return r.subProp[r1.URI()][r2.URI()]
}

// Member reports whether individual a is entailed to belong to basic class b.
func (r *Reasoner) Member(a string, b Class) bool {
	if !r.consistent {
		return true
	}
	return r.memb[a][b.URI()]
}

// Role reports whether the role assertion r0(a, b) is entailed.
func (r *Reasoner) Role(r0 Property, a, b string) bool {
	if !r.consistent {
		return true
	}
	return r.roles[r0.URI()][[2]string{a, b}]
}

// Members returns the sorted individuals entailed to belong to the class.
func (r *Reasoner) Members(b Class) []string {
	var out []string
	for a, classes := range r.memb {
		if classes[b.URI()] {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// Entails implements the triple entailment G ⊨ t of Section 5.2 for the
// graph representing this ontology. An inconsistent ontology entails every
// triple.
func (r *Reasoner) Entails(t rdf.Triple) bool {
	if !r.consistent {
		return true
	}
	if !t.S.IsIRI() || !t.P.IsIRI() || !t.O.IsIRI() {
		return false
	}
	s, p, o := t.S.Value, t.P.Value, t.O.Value
	switch p {
	case rdf.RDFSSubClassOf:
		return r.subClass[s][o]
	case rdf.RDFSSubPropertyOf:
		return r.subProp[s][o]
	case rdf.RDFType:
		switch o {
		case rdf.OWLClass, rdf.OWLObjectProperty, rdf.OWLRestriction:
			return r.o.ToGraph().Has(t)
		}
		return r.memb[s][o]
	case rdf.OWLInverseOf, rdf.OWLOnProperty, rdf.OWLSomeValuesFrom,
		rdf.OWLDisjointWith, rdf.OWLPropertyDisjointWith:
		return r.o.ToGraph().Has(t)
	default:
		return r.roles[p][[2]string{s, o}]
	}
}
