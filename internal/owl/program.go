package owl

import (
	"repro/internal/datalog"
	"repro/internal/rdf"
)

// ProgramSrc is the source of the fixed Datalog^{∃,⊥} program τ_owl2ql_core
// of Section 5.2, which encodes the OWL 2 QL core direct semantics
// entailment regime. It is fixed once and for all: posing a new query never
// requires touching it — the property Section 7 turns into the
// program-expressive-power separation.
const ProgramSrc = `
% τ_owl2ql_core — Section 5.2 of the paper, verbatim (modulo the corrected
% OWL spelling owl:someValuesFrom).

% Active domain: all URIs of the graph.
triple(?X, ?Y, ?Z) -> C(?X), C(?Y), C(?Z).

% Ontology element extraction.
triple(?X, rdf:type, ?Y) -> type(?X, ?Y).
triple(?X, rdfs:subPropertyOf, ?Y) -> sp(?X, ?Y).
triple(?X, owl:inverseOf, ?Y) -> inv(?X, ?Y).
triple(?X, rdf:type, owl:Restriction),
	triple(?X, owl:onProperty, ?Y),
	triple(?X, owl:someValuesFrom, owl:Thing) -> restriction(?X, ?Y).
triple(?X, rdfs:subClassOf, ?Y) -> sc(?X, ?Y).
triple(?X, owl:disjointWith, ?Y) -> disj(?X, ?Y).
triple(?X, owl:propertyDisjointWith, ?Y) -> disj_property(?X, ?Y).
triple(?X, ?Y, ?Z) -> triple1(?X, ?Y, ?Z).

% Reasoning about properties.
%
% Deviation from the paper's listing: the reflexivity rules below read from
% the extensional predicate triple rather than from the derived predicate
% type. With the paper's version, type[1] is an affected position (nulls
% reach it through the restriction rule), which contaminates sp[1]/sp[2] and
% sc[1]/sc[2] and makes the two transitivity rules violate (weak-frontier-)
% guardedness — contradicting Corollaries 5.4/6.2. On graphs that represent
% OWL 2 QL core ontologies the two versions agree: owl:ObjectProperty and
% owl:Class typings occur only as explicit vocabulary triples and are never
% derived.
sp(?X1, ?X2), inv(?Y1, ?X1), inv(?Y2, ?X2) -> sp(?Y1, ?Y2).
triple(?X, rdf:type, owl:ObjectProperty) -> sp(?X, ?X).
sp(?X, ?Y), sp(?Y, ?Z) -> sp(?X, ?Z).

% Reasoning about classes.
sp(?X1, ?X2), restriction(?Y1, ?X1), restriction(?Y2, ?X2) -> sc(?Y1, ?Y2).
triple(?X, rdf:type, owl:Class) -> sc(?X, ?X).
sc(?X, ?Y), sc(?Y, ?Z) -> sc(?X, ?Z).

% Reasoning about disjointness.
disj(?X1, ?X2), sc(?Y1, ?X1), sc(?Y2, ?X2) -> disj(?Y1, ?Y2).
disj_property(?X1, ?X2), sp(?Y1, ?X1), sp(?Y2, ?X2) -> disj_property(?Y1, ?Y2).

% Reasoning about membership assertions.
triple1(?X, ?U, ?Y), sp(?U, ?V) -> triple1(?X, ?V, ?Y).
triple1(?X, ?U, ?Y), inv(?U, ?V) -> triple1(?Y, ?V, ?X).
type(?X, ?Y), restriction(?Y, ?U) -> exists ?Z triple1(?X, ?U, ?Z).
type(?X, ?Y) -> triple1(?X, rdf:type, ?Y).
type(?X, ?Y), sc(?Y, ?Z) -> type(?X, ?Z).
triple1(?X, ?U, ?Y), restriction(?Z, ?U) -> type(?X, ?Z).
type(?X, ?Y), type(?X, ?Z), disj(?Y, ?Z) -> false.
triple1(?X, ?U, ?Y), triple1(?X, ?V, ?Y), disj_property(?U, ?V) -> false.
`

// Program parses τ_owl2ql_core. The program is warded with no negation, so
// it is (the rule part of) a TriQ-Lite 1.0 query for any output rules added
// on top.
func Program() *datalog.Program {
	return datalog.MustParse(ProgramSrc)
}

// GraphToDB converts an RDF graph into the database τ_db(G) over the
// relational schema {triple(·,·,·)} (Section 5.1). Non-IRI terms (literals,
// blank nodes) are admitted as constants by their lexical rendering, so
// realistic data loads; the paper's formal development assumes URI-only
// graphs.
func GraphToDB(g *rdf.Graph) []datalog.Atom {
	out := make([]datalog.Atom, 0, g.Len())
	for _, t := range g.SortedTriples() {
		out = append(out, TripleAtom(t))
	}
	return out
}

// TripleAtom converts one RDF triple into its τ_db atom triple(s, p, o).
// The incremental materialization layer uses it to turn store delta batches
// into EDB deltas; because it is the same encoding GraphToDB uses per triple,
// folding the deltas of a graph reaches exactly the database GraphToDB would
// build from the final graph.
func TripleAtom(t rdf.Triple) datalog.Atom {
	return datalog.NewAtom("triple", termConst(t.S), termConst(t.P), termConst(t.O))
}

func termConst(t rdf.Term) datalog.Term {
	switch t.Kind {
	case rdf.IRI:
		return datalog.C(t.Value)
	case rdf.Blank:
		// Blank nodes are treated as constants when loading data (the
		// paper's graphs are blank-node-free; see footnote 5).
		return datalog.C("_:" + t.Value)
	default:
		return datalog.C(t.String())
	}
}
