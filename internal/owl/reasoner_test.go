package owl

import (
	"testing"

	"repro/internal/rdf"
)

// animalsOntology is the eats/plant_material scenario of Sections 5.2–5.3.
func animalsOntology() *Ontology {
	return NewOntology().Add(
		SubClassOf(Atom("dog"), Atom("animal")),
		SubClassOf(Atom("animal"), Some(Prop("eats"))),
		SubClassOf(Some(Inv("eats")), Atom("plant_material")),
		ClassAssertion(Atom("dog"), "rex"),
	)
}

func TestReasonerSubClassClosure(t *testing.T) {
	r := NewReasoner(animalsOntology())
	cases := []struct {
		b1, b2 Class
		want   bool
	}{
		{Atom("dog"), Atom("animal"), true},
		{Atom("dog"), Some(Prop("eats")), true}, // transitivity
		{Atom("dog"), Atom("dog"), true},        // reflexivity
		{Atom("animal"), Atom("dog"), false},
		{Some(Inv("eats")), Atom("plant_material"), true},
		{Atom("plant_material"), Some(Inv("eats")), false},
	}
	for _, tc := range cases {
		if got := r.SubClassOf(tc.b1, tc.b2); got != tc.want {
			t.Errorf("%v ⊑ %v = %v, want %v", tc.b1, tc.b2, got, tc.want)
		}
	}
}

func TestReasonerPropertyClosure(t *testing.T) {
	o := NewOntology().Add(
		SubPropertyOf(Prop("p"), Prop("q")),
		SubPropertyOf(Prop("q"), Prop("r")),
	)
	r := NewReasoner(o)
	if !r.SubPropertyOf(Prop("p"), Prop("r")) {
		t.Error("p ⊑ r via transitivity")
	}
	// r1 ⊑ r2 entails r1⁻ ⊑ r2⁻ (the sp/inv rule of τ_owl2ql_core).
	if !r.SubPropertyOf(Inv("p"), Inv("r")) {
		t.Error("p⁻ ⊑ r⁻ via the inverse rule")
	}
	// …and ∃r1 ⊑ ∃r2.
	if !r.SubClassOf(Some(Prop("p")), Some(Prop("r"))) {
		t.Error("∃p ⊑ ∃r via the restriction rule")
	}
	if r.SubPropertyOf(Prop("r"), Prop("p")) {
		t.Error("subsumption must not be symmetric")
	}
}

func TestReasonerMembership(t *testing.T) {
	r := NewReasoner(animalsOntology())
	// The paper's running example: rex the dog is an animal, hence eats
	// something.
	if !r.Member("rex", Atom("animal")) {
		t.Error("rex should be an animal")
	}
	if !r.Member("rex", Some(Prop("eats"))) {
		t.Error("rex should belong to ∃eats")
	}
	if r.Member("rex", Atom("plant_material")) {
		t.Error("rex should not be plant material")
	}
	if got := r.Members(Some(Prop("eats"))); len(got) != 1 || got[0] != "rex" {
		t.Errorf("Members(∃eats) = %v", got)
	}
}

func TestReasonerRoleEntailment(t *testing.T) {
	o := NewOntology().Add(
		SubPropertyOf(Prop("is_coauthor_of"), Prop("knows")),
		PropertyAssertion("is_coauthor_of", "aho", "ullman"),
	)
	r := NewReasoner(o)
	if !r.Role(Prop("is_coauthor_of"), "aho", "ullman") {
		t.Error("asserted role missing")
	}
	if !r.Role(Prop("knows"), "aho", "ullman") {
		t.Error("role via subproperty missing")
	}
	if !r.Role(Inv("knows"), "ullman", "aho") {
		t.Error("inverse role missing")
	}
	if r.Role(Prop("knows"), "ullman", "aho") {
		t.Error("role direction must matter")
	}
	// Membership via role assertions.
	if !r.Member("aho", Some(Prop("knows"))) {
		t.Error("aho ∈ ∃knows")
	}
	if r.Member("ullman", Some(Prop("knows"))) {
		t.Error("ullman ∉ ∃knows (only ∃knows⁻)")
	}
	if !r.Member("ullman", Some(Inv("knows"))) {
		t.Error("ullman ∈ ∃knows⁻")
	}
}

func TestReasonerConsistency(t *testing.T) {
	ok := NewReasoner(animalsOntology())
	if !ok.Consistent() {
		t.Error("animals ontology should be consistent")
	}
	// rex both dog and plant_material with disjointness: inconsistent —
	// note the violation is via the *derived* membership animal.
	bad := animalsOntology().Add(
		DisjointClasses(Atom("animal"), Atom("plant_material")),
		ClassAssertion(Atom("plant_material"), "rex"),
	)
	r := NewReasoner(bad)
	if r.Consistent() {
		t.Error("disjointness violation not detected")
	}
	// An inconsistent ontology entails everything.
	if !r.Member("whatever", Atom("anything")) || !r.Entails(rdf.T("a", "b", "c")) {
		t.Error("inconsistent ontology must entail everything")
	}
	// Property disjointness.
	badP := NewOntology().Add(
		DisjointProperties(Prop("p"), Prop("q")),
		SubPropertyOf(Prop("p"), Prop("q")),
		PropertyAssertion("p", "x", "y"),
	)
	if NewReasoner(badP).Consistent() {
		t.Error("property disjointness violation not detected")
	}
}

func TestReasonerEntailsTriples(t *testing.T) {
	r := NewReasoner(animalsOntology())
	cases := []struct {
		t    rdf.Triple
		want bool
	}{
		{rdf.T("rex", "rdf:type", "dog"), true},
		{rdf.T("rex", "rdf:type", "animal"), true},
		{rdf.T("rex", "rdf:type", "∃eats"), true},
		{rdf.T("dog", "rdfs:subClassOf", "∃eats"), true},
		{rdf.T("dog", "rdfs:subClassOf", "plant_material"), false},
		{rdf.T("eats", "rdf:type", "owl:ObjectProperty"), true},
		{rdf.T("∃eats", "owl:onProperty", "eats"), true},
		{rdf.T("rex", "eats", "grass"), false},
		{rdf.T("eats", "rdfs:subPropertyOf", "eats"), true},
	}
	for _, tc := range cases {
		if got := r.Entails(tc.t); got != tc.want {
			t.Errorf("Entails(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	// Non-URI triples are never entailed (consistent case).
	if r.Entails(rdf.Triple{S: rdf.NewLiteral("x"), P: rdf.NewIRI("p"), O: rdf.NewIRI("y")}) {
		t.Error("literal-subject triple entailed")
	}
}
