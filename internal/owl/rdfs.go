package owl

import "repro/internal/datalog"

// RDFSProgramSrc is a fixed rule library for the ρdf core of RDFS (after
// Muñoz, Pérez, Gutierrez, "Simple and Efficient Minimal RDFS"), in the same
// style as τ_owl2ql_core: the paper's Section 2 motivates exactly this kind
// of reusable library ("if such rules are available as a library, then the
// user just has to include them"). The program is plain Datalog — hence
// trivially a TriQ-Lite 1.0 rule set — and derives the RDFS-entailed triples
// into triple1(·,·,·).
const RDFSProgramSrc = `
% ρdf — the minimal deductive core of RDFS as a fixed rule library.

triple(?X, ?Y, ?Z) -> C(?X), C(?Y), C(?Z).
triple(?X, ?Y, ?Z) -> triple1(?X, ?Y, ?Z).

% subPropertyOf: transitivity and inheritance.
triple1(?A, rdfs:subPropertyOf, ?B), triple1(?B, rdfs:subPropertyOf, ?D) ->
	triple1(?A, rdfs:subPropertyOf, ?D).
triple1(?A, rdfs:subPropertyOf, ?B), triple1(?X, ?A, ?Y) ->
	triple1(?X, ?B, ?Y).

% subClassOf: transitivity and type inheritance.
triple1(?A, rdfs:subClassOf, ?B), triple1(?B, rdfs:subClassOf, ?D) ->
	triple1(?A, rdfs:subClassOf, ?D).
triple1(?A, rdfs:subClassOf, ?B), triple1(?X, rdf:type, ?A) ->
	triple1(?X, rdf:type, ?B).

% domain and range typing.
triple1(?A, rdfs:domain, ?D), triple1(?X, ?A, ?Y) ->
	triple1(?X, rdf:type, ?D).
triple1(?A, rdfs:range, ?R), triple1(?X, ?A, ?Y) ->
	triple1(?Y, rdf:type, ?R).
`

// RDFSProgram parses the fixed ρdf library.
func RDFSProgram() *datalog.Program { return datalog.MustParse(RDFSProgramSrc) }
