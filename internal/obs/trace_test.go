package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	ids := NewIDSource(7)
	tid, sid := ids.TraceID(), ids.SpanID()
	h := FormatTraceparent(tid, sid, FlagSampled)
	gtid, gsid, flags, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if gtid != tid || gsid != sid || flags != FlagSampled {
		t.Fatalf("round trip mismatch: got %s %s %02x", gtid, gsid, flags)
	}

	// The W3C spec example parses.
	gtid, gsid, flags, err = ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if err != nil {
		t.Fatalf("spec example rejected: %v", err)
	}
	if gtid.String() != "0af7651916cd43dd8448eb211c80319c" || gsid.String() != "b7ad6b7169203331" || flags != 0x01 {
		t.Fatalf("spec example misparsed: %s %s %02x", gtid, gsid, flags)
	}

	// Forward compatibility: a higher version with extra fields parses as
	// long as the first four fields are well-formed.
	if _, _, _, err := ParseTraceparent("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); err != nil {
		t.Errorf("future version rejected: %v", err)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",          // 3 fields
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", // version 00 must have exactly 4
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",       // version ff invalid
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",       // all-zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",       // all-zero span id
		"00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01",       // non-hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz",       // bad flags
		"0-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",        // short version
		"00-0af7651916cd43dd8448eb211c80319c99-b7ad6b7169203331-01",     // long trace id
	}
	for _, h := range bad {
		if _, _, _, err := ParseTraceparent(h); err == nil {
			t.Errorf("accepted malformed traceparent %q", h)
		}
	}
}

func TestSamplerDeterministicAndRate(t *testing.T) {
	const n = 20000
	ids := NewIDSource(42)
	tids := make([]TraceID, n)
	for i := range tids {
		tids[i] = ids.TraceID()
	}
	s1 := NewSampler(0.1, 99)
	s2 := NewSampler(0.1, 99)
	kept := 0
	for _, id := range tids {
		a, b := s1.Sampled(id), s2.Sampled(id)
		if a != b {
			t.Fatalf("same (rate, seed) disagree on %s", id)
		}
		if a {
			kept++
		}
	}
	rate := float64(kept) / n
	if rate < 0.05 || rate > 0.15 {
		t.Errorf("10%% sampler kept %.1f%% of %d ids", rate*100, n)
	}
	// A different seed selects a different subset.
	s3 := NewSampler(0.1, 100)
	same := 0
	for _, id := range tids {
		if s1.Sampled(id) == s3.Sampled(id) {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced identical decisions")
	}
	// Boundary rates.
	all, none := NewSampler(1.0, 0), NewSampler(0, 0)
	var nilS *Sampler
	for _, id := range tids[:100] {
		if !all.Sampled(id) {
			t.Fatal("rate 1.0 dropped an id")
		}
		if none.Sampled(id) || nilS.Sampled(id) {
			t.Fatal("rate 0 / nil sampler kept an id")
		}
	}
}

func TestIDSourceDeterministicWithSeed(t *testing.T) {
	a, b := NewIDSource(5), NewIDSource(5)
	for i := 0; i < 100; i++ {
		if a.TraceID() != b.TraceID() || a.SpanID() != b.SpanID() {
			t.Fatal("seeded id streams diverged")
		}
	}
}

// StartSpan with a nil Obs builds a pure trace tree: parent links follow the
// context, End closes nodes, and Finish force-closes anything left open.
func TestSpanTreeBuildAndClose(t *testing.T) {
	ids := NewIDSource(3)
	tr := NewTrace(ids.TraceID(), ids, true)
	remote := ids.SpanID()
	tr.SetRemoteParent(remote)

	ctx := ContextWithTrace(context.Background(), tr)
	ctx, root := StartSpan(ctx, nil, "serve.request", F("endpoint", "query"))
	if root == nil {
		t.Fatal("recording trace returned nil root span")
	}
	ctx2, child := StartSpan(ctx, nil, "triq.eval")
	grand := child.Span("chase.run")
	_ = ctx2
	dangling := root.Span("left.open")
	_ = dangling

	grand.End()
	child.End(F("rounds", 3))
	root.End()
	tr.Finish()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]TraceSpan{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.End.IsZero() {
			t.Errorf("span %s not closed after Finish", s.Name)
		}
		if s.ID.IsZero() {
			t.Errorf("span %s has zero id", s.Name)
		}
	}
	if byName["serve.request"].Parent != remote {
		t.Errorf("root parent = %s, want remote %s", byName["serve.request"].Parent, remote)
	}
	if byName["triq.eval"].Parent != byName["serve.request"].ID {
		t.Error("child not parented on root")
	}
	if byName["chase.run"].Parent != byName["triq.eval"].ID {
		t.Error("grandchild not parented on child")
	}
	if acct := tr.Account(); acct.Spans != 4 {
		t.Errorf("account.Spans = %d, want 4", acct.Spans)
	}
}

func TestStartSpanNoObsNoTraceIsNoop(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), nil, "anything")
	if sp != nil {
		t.Fatal("expected nil span with no obs and no trace")
	}
	sp.End() // nil-safe
	if SpanFrom(ctx) != nil {
		t.Error("no-op StartSpan polluted the context")
	}
	// Non-recording trace: still nil span, but the trace rides the context.
	ids := NewIDSource(1)
	tr := NewTrace(ids.TraceID(), ids, false)
	ctx = ContextWithTrace(context.Background(), tr)
	if _, sp := StartSpan(ctx, nil, "x"); sp != nil {
		t.Error("non-recording trace with nil obs created a span")
	}
	if RecordingTrace(ctx) {
		t.Error("non-recording trace reports recording")
	}
}

func TestTraceMaxSpansCap(t *testing.T) {
	ids := NewIDSource(2)
	tr := NewTrace(ids.TraceID(), ids, true)
	tr.SetMaxSpans(3)
	ctx := ContextWithTrace(context.Background(), tr)
	_, root := StartSpan(ctx, nil, "root")
	for i := 0; i < 5; i++ {
		root.Span("child").End()
	}
	root.End()
	tr.Finish()
	acct := tr.Account()
	if acct.Spans != 3 || acct.SpansDropped != 3 {
		t.Errorf("spans=%d dropped=%d, want 3/3", acct.Spans, acct.SpansDropped)
	}
}

func TestTraceStoreKeepsSlow(t *testing.T) {
	ids := NewIDSource(11)
	st := NewTraceStore(2, "test")
	mk := func(slow, recording bool) *Trace {
		tr := NewTrace(ids.TraceID(), ids, recording)
		if slow {
			tr.MarkSlow()
		}
		tr.Finish()
		st.Add(tr)
		return tr
	}
	mk(false, false)
	slow := mk(true, true)
	mk(false, false)
	mk(false, true) // evicts a fast one, never the slow one
	mk(false, false)

	if got := st.Get(slow.ID().String()); got != slow {
		t.Fatal("slow trace was evicted")
	}
	rows, added, evicted := st.List()
	if len(rows) != 2 || added != 5 || evicted != 3 {
		t.Fatalf("rows=%d added=%d evicted=%d, want 2/5/3", len(rows), added, evicted)
	}
	// Newest first.
	if rows[0].Slow {
		t.Error("newest row should be the last-added fast trace")
	}
	if !rows[1].Slow {
		t.Error("slow trace missing from listing")
	}
	if st.Get(strings.Repeat("0", 32)) != nil {
		t.Error("Get of unknown id returned a trace")
	}
}

func TestAccountChaseWorkStoresNotSums(t *testing.T) {
	ids := NewIDSource(4)
	tr := NewTrace(ids.TraceID(), ids, false)
	tr.SetChaseWork(2, 10, 5, 7, 1)
	tr.SetChaseWork(4, 20, 9, 13, 2) // deeper rerun replaces, not adds
	tr.AddProver(3, 1)
	tr.AddProver(2, 2)
	tr.SetTimes(100, 10, 80)
	acct := tr.Account()
	if acct.ChaseRuns != 2 || acct.Rounds != 4 || acct.TriggersAttempted != 20 ||
		acct.TriggersFired != 9 || acct.FactsDerived != 13 || acct.NullsInvented != 2 {
		t.Errorf("chase counters wrong: %+v", acct)
	}
	if acct.ProverProofs != 2 || acct.ProverMemoHits != 5 || acct.ProverMemoMisses != 3 {
		t.Errorf("prover counters wrong: %+v", acct)
	}
	if acct.WallUS != 100 || acct.QueueUS != 10 || acct.ExecUS != 80 {
		t.Errorf("times wrong: %+v", acct)
	}
}

func TestOTLPExportShape(t *testing.T) {
	ids := NewIDSource(6)
	st := NewTraceStore(4, "triqd-test")
	tr := NewTrace(ids.TraceID(), ids, true)
	ctx := ContextWithTrace(context.Background(), tr)
	_, root := StartSpan(ctx, nil, "serve.request")
	root.Span("triq.eval").End(F("facts", int64(42)))
	time.Sleep(time.Millisecond)
	root.End()
	tr.Finish()
	st.Add(tr)

	doc := st.OTLP(tr)
	if doc == nil || len(doc.ResourceSpans) != 1 {
		t.Fatal("missing resourceSpans")
	}
	rs := doc.ResourceSpans[0]
	if len(rs.ScopeSpans) != 1 || len(rs.ScopeSpans[0].Spans) != 2 {
		t.Fatalf("wrong span count in export")
	}
	tid := tr.ID().String()
	for _, sp := range rs.ScopeSpans[0].Spans {
		if sp.TraceID != tid {
			t.Errorf("span %s carries trace %s, want %s", sp.Name, sp.TraceID, tid)
		}
		if sp.StartTimeUnixNano == "" || sp.EndTimeUnixNano == "" {
			t.Errorf("span %s missing timestamps", sp.Name)
		}
	}
	if doc.Account.Spans != 2 {
		t.Errorf("export account spans = %d, want 2", doc.Account.Spans)
	}
}
