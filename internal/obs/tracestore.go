// In-memory trace store with tail sampling: a bounded buffer of finished
// traces where slow traces are always admitted and survive eviction
// preferentially. Export is OTLP-shaped JSON (the resourceSpans →
// scopeSpans → spans nesting of the OpenTelemetry protocol), so standard
// tooling and humans both read it without a collector in the loop.
package obs

import (
	"encoding/json"
	"sort"
	"sync"
)

// TraceStore retains finished traces for /debug/trace.
type TraceStore struct {
	mu      sync.Mutex
	cap     int
	traces  []*Trace
	added   int64
	evicted int64
	service string
}

// NewTraceStore builds a store keeping at most capacity traces
// (capacity <= 0 selects 256). service names the emitting process in the
// OTLP resource attributes.
func NewTraceStore(capacity int, service string) *TraceStore {
	if capacity <= 0 {
		capacity = 256
	}
	if service == "" {
		service = "triqd"
	}
	return &TraceStore{cap: capacity, service: service}
}

// Add admits a finished trace. Eviction prefers, in order: the oldest
// non-slow non-recording trace (account-only entries are the cheapest to
// lose), then the oldest non-slow trace; only when every retained trace is
// slow does the oldest slow one go — the "always keep slow" tail-sampling
// rule.
func (st *TraceStore) Add(t *Trace) {
	if st == nil || t == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.added++
	if len(st.traces) >= st.cap {
		victim := -1
		for i, old := range st.traces { // oldest first
			if !old.Pinned() && !old.Slow() && !old.Recording() {
				victim = i
				break
			}
		}
		if victim < 0 {
			for i, old := range st.traces {
				if !old.Pinned() && !old.Slow() {
					victim = i
					break
				}
			}
		}
		if victim < 0 {
			for i, old := range st.traces {
				if !old.Pinned() {
					victim = i
					break
				}
			}
		}
		if victim < 0 {
			victim = 0
		}
		st.traces = append(st.traces[:victim], st.traces[victim+1:]...)
		st.evicted++
	}
	st.traces = append(st.traces, t)
}

// Pin marks the stored trace with the given hex id as eviction-exempt,
// reporting whether it was found.
func (st *TraceStore) Pin(id string) bool {
	t := st.Get(id)
	if t == nil {
		return false
	}
	t.Pin()
	return true
}

// Get returns the stored trace with the given hex id, or nil.
func (st *TraceStore) Get(id string) *Trace {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := len(st.traces) - 1; i >= 0; i-- {
		if st.traces[i].ID().String() == id {
			return st.traces[i]
		}
	}
	return nil
}

// TraceSummary is one row of the store listing.
type TraceSummary struct {
	TraceID   string  `json:"trace_id"`
	Root      string  `json:"root"`
	StartUnix int64   `json:"start_unix_ns"`
	WallUS    int64   `json:"wall_us"`
	Spans     int64   `json:"spans"`
	Recording bool    `json:"recording"`
	Slow      bool    `json:"slow"`
	Pinned    bool    `json:"pinned,omitempty"`
	Account   Account `json:"account"`
}

// List returns summaries, newest first, plus add/evict totals.
func (st *TraceStore) List() (rows []TraceSummary, added, evicted int64) {
	if st == nil {
		return nil, 0, 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	rows = make([]TraceSummary, 0, len(st.traces))
	for i := len(st.traces) - 1; i >= 0; i-- {
		t := st.traces[i]
		t.mu.Lock()
		rows = append(rows, TraceSummary{
			TraceID:   t.id.String(),
			Root:      t.rootName,
			StartUnix: t.start.UnixNano(),
			WallUS:    t.account.WallUS,
			Spans:     int64(len(t.spans)),
			Recording: t.recording,
			Slow:      t.slow,
			Pinned:    t.pinned,
			Account:   t.account,
		})
		t.mu.Unlock()
	}
	return rows, st.added, st.evicted
}

// Service returns the configured service name.
func (st *TraceStore) Service() string {
	if st == nil {
		return ""
	}
	return st.service
}

// --- OTLP-shaped JSON export -----------------------------------------------

type otlpKeyValue struct {
	Key   string       `json:"key"`
	Value otlpAnyValue `json:"value"`
}

type otlpAnyValue struct {
	String *string  `json:"stringValue,omitempty"`
	Bool   *bool    `json:"boolValue,omitempty"`
	Int    *string  `json:"intValue,omitempty"` // OTLP/JSON encodes 64-bit ints as strings
	Double *float64 `json:"doubleValue,omitempty"`
}

type otlpSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"`
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []otlpKeyValue `json:"attributes,omitempty"`
	Status            struct{}       `json:"status"`
}

type otlpScopeSpans struct {
	Scope struct {
		Name string `json:"name"`
	} `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpResourceSpans struct {
	Resource struct {
		Attributes []otlpKeyValue `json:"attributes"`
	} `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

// OTLPDocument is the top-level OTLP/JSON trace export shape, extended with
// the trace's resource account (an extension field OTLP consumers ignore).
type OTLPDocument struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
	Account       Account             `json:"account"`
}

func otlpValue(v any) otlpAnyValue {
	switch x := v.(type) {
	case bool:
		return otlpAnyValue{Bool: &x}
	case int:
		s := formatInt(int64(x))
		return otlpAnyValue{Int: &s}
	case int64:
		s := formatInt(x)
		return otlpAnyValue{Int: &s}
	case float64:
		return otlpAnyValue{Double: &x}
	case string:
		return otlpAnyValue{String: &x}
	default:
		buf, err := json.Marshal(v)
		s := string(buf)
		if err != nil {
			s = "?"
		}
		return otlpAnyValue{String: &s}
	}
}

func formatInt(v int64) string {
	buf, _ := json.Marshal(v)
	return string(buf)
}

func otlpAttrs(kv []KV) []otlpKeyValue {
	if len(kv) == 0 {
		return nil
	}
	out := make([]otlpKeyValue, 0, len(kv))
	for _, a := range kv {
		out = append(out, otlpKeyValue{Key: a.K, Value: otlpValue(a.V)})
	}
	return out
}

// OTLP renders the trace as an OTLP-shaped JSON document. Spans are sorted
// by start time (ties by span id) for stable output.
func (st *TraceStore) OTLP(t *Trace) *OTLPDocument {
	if t == nil {
		return nil
	}
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].ID.String() < spans[j].ID.String()
	})
	tid := t.ID().String()
	oSpans := make([]otlpSpan, 0, len(spans))
	for _, n := range spans {
		sp := otlpSpan{
			TraceID:           tid,
			SpanID:            n.ID.String(),
			Name:              n.Name,
			StartTimeUnixNano: formatInt(n.Start.UnixNano()),
			EndTimeUnixNano:   formatInt(n.End.UnixNano()),
			Attributes:        otlpAttrs(n.Attrs),
		}
		if !n.Parent.IsZero() {
			sp.ParentSpanID = n.Parent.String()
		}
		oSpans = append(oSpans, sp)
	}
	doc := &OTLPDocument{Account: t.Account()}
	rs := otlpResourceSpans{}
	service := "triqd"
	if st != nil && st.service != "" {
		service = st.service
	}
	rs.Resource.Attributes = otlpAttrs([]KV{{K: "service.name", V: service}})
	ss := otlpScopeSpans{Spans: oSpans}
	ss.Scope.Name = "repro/internal/obs"
	rs.ScopeSpans = []otlpScopeSpans{ss}
	doc.ResourceSpans = []otlpResourceSpans{rs}
	return doc
}
