package obs

import (
	"bufio"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Strict Prometheus text-exposition (0.0.4) conformance for /metrics: every
// series name legal, exactly one # TYPE line per family emitted before its
// samples, label syntax and escaping valid, no duplicate series, histogram
// _bucket series cumulative and non-decreasing with ascending le bounds
// ending at +Inf, _count equal to the +Inf bucket, _sum present, and every
// value a parseable float. A registry stuffed with hostile metric names
// (dots, dashes, unicode, leading digits, histogram-colliding scalars) must
// still render a clean exposition.

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   string
}

// parsePromExposition validates the full text format line-by-line and
// returns the samples grouped by family, preserving sample order.
func parsePromExposition(t *testing.T, text string) (map[string]string, map[string][]promSample) {
	t.Helper()
	types := map[string]string{} // family -> kind
	samples := map[string][]promSample{}
	typeSeen := map[string]bool{}   // family -> # TYPE emitted
	familyDone := map[string]bool{} // family -> a later family started (interleave check)
	var current string

	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				t.Fatalf("malformed comment line %q", line)
			}
			if fields[1] != "TYPE" {
				continue
			}
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			fam, kind := fields[2], fields[3]
			if !promNameRe.MatchString(fam) {
				t.Fatalf("illegal family name in %q", line)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("illegal TYPE %q in %q", kind, line)
			}
			if typeSeen[fam] {
				t.Fatalf("duplicate # TYPE for family %q", fam)
			}
			if familyDone[fam] {
				t.Fatalf("family %q interleaved with another family", fam)
			}
			typeSeen[fam] = true
			types[fam] = kind
			if current != "" && current != fam {
				familyDone[current] = true
			}
			current = fam
			continue
		}
		s := parsePromSample(t, line)
		fam := sampleFamily(s.name, types)
		if !typeSeen[fam] {
			t.Fatalf("sample %q precedes its # TYPE line", line)
		}
		if fam != current {
			t.Fatalf("sample %q outside its family block (current %q)", line, current)
		}
		samples[fam] = append(samples[fam], s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return types, samples
}

// sampleFamily maps a series name to its family: histogram-derived suffixes
// fold onto the base name when the base is a declared histogram.
func sampleFamily(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// parsePromSample validates one sample line: name, optional labels (with
// escaping), and a float value.
func parsePromSample(t *testing.T, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}, line: line}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 {
		nameEnd = brace
	} else {
		nameEnd = strings.IndexByte(rest, ' ')
		if nameEnd < 0 {
			t.Fatalf("no value on sample line %q", line)
		}
	}
	s.name = rest[:nameEnd]
	if !promNameRe.MatchString(s.name) {
		t.Fatalf("illegal metric name %q in %q", s.name, line)
	}
	rest = rest[nameEnd:]
	if brace >= 0 {
		end := strings.LastIndexByte(rest, '}')
		if end < 0 {
			t.Fatalf("unterminated label set in %q", line)
		}
		parseLabels(t, line, rest[1:end], s.labels)
		rest = rest[end+1:]
	}
	rest = strings.TrimPrefix(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		t.Fatalf("sample line %q has %d value/timestamp fields", line, len(fields))
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatalf("unparseable value in %q: %v", line, err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			t.Fatalf("unparseable timestamp in %q: %v", line, err)
		}
	}
	s.value = v
	return s
}

// parseLabels validates label syntax and escape sequences: values are
// double-quoted with only \\, \", and \n escapes legal.
func parseLabels(t *testing.T, line, body string, out map[string]string) {
	t.Helper()
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			t.Fatalf("label without '=' in %q", line)
		}
		name := body[i : i+eq]
		if !promLabelRe.MatchString(name) {
			t.Fatalf("illegal label name %q in %q", name, line)
		}
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			t.Fatalf("unquoted label value in %q", line)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(body) {
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					t.Fatalf("dangling escape in %q", line)
				}
				esc := body[i+1]
				switch esc {
				case '\\', '"':
					val.WriteByte(esc)
				case 'n':
					val.WriteByte('\n')
				default:
					t.Fatalf("illegal escape \\%c in %q", esc, line)
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			t.Fatalf("unterminated label value in %q", line)
		}
		if _, dup := out[name]; dup {
			t.Fatalf("duplicate label %q in %q", name, line)
		}
		out[name] = val.String()
		if i < len(body) {
			if body[i] != ',' {
				t.Fatalf("garbage after label value in %q", line)
			}
			i++
		}
	}
}

// validatePromText runs every structural check over a full exposition.
func validatePromText(t *testing.T, text string) (map[string]string, map[string][]promSample) {
	t.Helper()
	types, samples := parsePromExposition(t, text)

	// No duplicate series anywhere: (name, labelset) is unique.
	seen := map[string]bool{}
	for _, fam := range samples {
		for _, s := range fam {
			key := s.name + "|" + labelKey(s.labels)
			if seen[key] {
				t.Fatalf("duplicate series %q", s.line)
			}
			seen[key] = true
		}
	}

	for fam, kind := range types {
		rows := samples[fam]
		if len(rows) == 0 {
			t.Fatalf("family %q declared but has no samples", fam)
		}
		switch kind {
		case "counter":
			if len(rows) != 1 || rows[0].name != fam {
				t.Fatalf("counter family %q rows %+v", fam, rows)
			}
			if rows[0].value < 0 {
				t.Fatalf("negative counter %q", rows[0].line)
			}
		case "gauge":
			for _, s := range rows {
				if s.name != fam {
					t.Fatalf("gauge family %q has sample %q", fam, s.name)
				}
			}
		case "histogram":
			validateHistogramFamily(t, fam, rows)
		}
	}
	return types, samples
}

func validateHistogramFamily(t *testing.T, fam string, rows []promSample) {
	t.Helper()
	var buckets []promSample
	var sum, count *promSample
	for i := range rows {
		s := rows[i]
		switch s.name {
		case fam + "_bucket":
			buckets = append(buckets, s)
		case fam + "_sum":
			sum = &rows[i]
		case fam + "_count":
			count = &rows[i]
		default:
			t.Fatalf("histogram %q has alien sample %q", fam, s.line)
		}
	}
	if sum == nil || count == nil || len(buckets) == 0 {
		t.Fatalf("histogram %q missing _sum/_count/_bucket", fam)
	}
	prevBound := math.Inf(-1)
	prevCum := int64(-1)
	for i, b := range buckets {
		le, ok := b.labels["le"]
		if !ok {
			t.Fatalf("bucket without le label: %q", b.line)
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("unparseable le=%q in %q: %v", le, b.line, err)
		}
		if bound <= prevBound {
			t.Fatalf("le bounds not ascending at %q (prev %v)", b.line, prevBound)
		}
		prevBound = bound
		cum := int64(b.value)
		if float64(cum) != b.value || cum < 0 {
			t.Fatalf("non-integral bucket count %q", b.line)
		}
		if cum < prevCum {
			t.Fatalf("bucket counts not cumulative at %q (prev %d)", b.line, prevCum)
		}
		prevCum = cum
		if i == len(buckets)-1 {
			if !math.IsInf(bound, 1) {
				t.Fatalf("histogram %q does not end with le=\"+Inf\"", fam)
			}
			if int64(count.value) != cum {
				t.Fatalf("histogram %q _count %v != +Inf bucket %d", fam, count.value, cum)
			}
		}
	}
}

func labelKey(labels map[string]string) string {
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		parts = append(parts, fmt.Sprintf("%s=%q", k, v))
	}
	// order-insensitive key
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j-1] > parts[j]; j-- {
			parts[j-1], parts[j] = parts[j], parts[j-1]
		}
	}
	return strings.Join(parts, ",")
}

func TestWritePrometheusConformance(t *testing.T) {
	r := NewRegistry()
	// Hostile names: dots, dashes, unicode, leading digit, uppercase.
	r.Add("serve.requests", 42)
	r.Add("weird-name.with–dash", 7)
	r.Add("9starts.with.digit", 1)
	r.SetGauge("repl.lag_seconds", 1.25)
	r.SetGauge("negative.gauge", -3.5)
	r.SetGauge("huge.gauge", 1.5e18)
	r.SetGauge("Ünicode.gauge", 2)
	for i := 0; i < 500; i++ {
		r.Observe("serve.latency_us", float64(i*13%9000))
	}
	r.Observe("tiny.hist", 0.5)
	r.Observe("overflow.hist", 5e13) // lands in the +Inf bucket

	var b strings.Builder
	r.WritePrometheus(&b)
	WriteBuildInfoProm(&b)
	types, samples := validatePromText(t, b.String())

	if types["serve_requests"] != "counter" || types["repl_lag_seconds"] != "gauge" ||
		types["serve_latency_us"] != "histogram" {
		t.Fatalf("family kinds = %v", types)
	}
	if types["triq_build_info"] != "gauge" {
		t.Fatal("build info family missing")
	}
	if got := samples["serve_requests"][0].value; got != 42 {
		t.Fatalf("serve_requests = %v", got)
	}
	// The overflow observation must be counted in +Inf (and only there).
	rows := samples["overflow_hist"]
	last := rows[len(rows)-3] // ... +Inf bucket, _sum, _count
	if last.name != "overflow_hist_bucket" || last.labels["le"] != "+Inf" || last.value != 1 {
		t.Fatalf("overflow +Inf bucket = %+v", last)
	}
}

func TestWritePrometheusHistogramCollisionGuard(t *testing.T) {
	r := NewRegistry()
	r.Observe("lat", 10)
	// Scalars that sanitize onto the histogram's derived series names must
	// be dropped rather than emitted as duplicate series.
	r.Add("lat.count", 99)
	r.Add("lat.sum", 98)
	r.SetGauge("lat.bucket", 97)
	r.Add("lat", 96) // collides with the base family name itself

	var b strings.Builder
	r.WritePrometheus(&b)
	text := b.String()
	types, samples := validatePromText(t, text)
	if types["lat"] != "histogram" {
		t.Fatalf("lat family = %q, want the histogram to win", types["lat"])
	}
	if got := samples["lat"][len(samples["lat"])-1].value; got != 1 {
		t.Fatalf("lat_count = %v, want the histogram's count", got)
	}
	if strings.Contains(text, " 99\n") || strings.Contains(text, " 96\n") {
		t.Fatalf("colliding scalar leaked into:\n%s", text)
	}
}

func TestWritePrometheusEmptyAndNil(t *testing.T) {
	var b strings.Builder
	var nilReg *Registry
	nilReg.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Fatalf("nil registry wrote %q", b.String())
	}
	NewRegistry().WritePrometheus(&b)
	if b.Len() != 0 {
		t.Fatalf("empty registry wrote %q", b.String())
	}
	// A histogram with zero observations is omitted entirely.
	r := NewRegistry()
	r.getHist("never.observed")
	r.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Fatalf("zero-count histogram wrote %q", b.String())
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"serve.latency_us": "serve_latency_us",
		"weird-name":       "weird_name",
		"9lives":           "_9lives",
		"a:b":              "a:b",
		"Ünicode":          "__nicode", // 2-byte rune → 2 underscores
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
		if got := PromName(in); !promNameRe.MatchString(got) {
			t.Errorf("PromName(%q) = %q is not a legal metric name", in, got)
		}
	}
}
