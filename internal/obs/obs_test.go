package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a clock that advances step per call.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestNilObsIsNoOp(t *testing.T) {
	var o *Obs
	if o.Enabled() {
		t.Fatal("nil Obs must report disabled")
	}
	// Every method must be callable on nil without panicking.
	o.Count("c", 1)
	o.Gauge("g", 2)
	o.Observe("h", 3)
	o.Event("e", F("k", "v"))
	if o.Summary() != "" || o.Registry() != nil || o.SinkErr() != nil {
		t.Fatal("nil Obs must return zero values")
	}
	sp := o.Span("root")
	if sp != nil {
		t.Fatal("nil Obs must return nil spans")
	}
	sp.Attr("k", 1)
	child := sp.Span("child")
	child.End()
	sp.End(F("k", 2))
	var reg *Registry
	reg.Add("c", 1)
	reg.SetGauge("g", 1)
	reg.Observe("h", 1)
	if reg.Counter("c") != 0 || reg.Gauge("g") != 0 || reg.Summary() != "" {
		t.Fatal("nil Registry must return zero values")
	}
	if _, ok := reg.Hist("h"); ok {
		t.Fatal("nil Registry must have no histograms")
	}
}

func TestRegistryCountersGaugesHists(t *testing.T) {
	r := NewRegistry()
	r.Add("triggers", 3)
	r.Add("triggers", 4)
	if got := r.Counter("triggers"); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	r.SetGauge("depth", 4)
	r.SetGauge("depth", 6)
	if got := r.Gauge("depth"); got != 6 {
		t.Fatalf("gauge = %g, want 6", got)
	}
	for i := 1; i <= 100; i++ {
		r.Observe("lat", float64(i))
	}
	s, ok := r.Hist("lat")
	if !ok {
		t.Fatal("histogram missing")
	}
	if s.Count != 100 || s.Max != 100 || s.Sum != 5050 {
		t.Fatalf("hist stats = %+v", s)
	}
	if s.P50 != 50 || s.P95 != 95 {
		t.Fatalf("quantiles p50=%g p95=%g, want 50/95", s.P50, s.P95)
	}
	sum := r.Summary()
	for _, want := range []string{"triggers", "depth", "lat", "p95=95.0"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestHistogramBoundedMemory(t *testing.T) {
	// The log-bucketed histogram holds a fixed bucket array no matter how
	// long the stream is, and its interpolated quantiles stay within the
	// 1-2-5 bucket width of the true value.
	r := NewRegistry()
	for i := 0; i < 100_000; i++ {
		r.Observe("big", float64(i))
	}
	s, _ := r.Hist("big")
	if s.Count != 100_000 || s.Max != 99_999 {
		t.Fatalf("stats = %+v", s)
	}
	if s.P50 < 40_000 || s.P50 > 60_000 {
		t.Fatalf("p50 = %g, want ≈50000", s.P50)
	}
	snap, ok := r.HistSnapshot("big")
	if !ok {
		t.Fatal("snapshot missing")
	}
	if got, want := len(snap.Buckets), len(BucketBounds())+1; got != want {
		t.Fatalf("bucket count = %d, want %d (fixed)", got, want)
	}
	var total int64
	for _, n := range snap.Buckets {
		total += n
	}
	if total != 100_000 {
		t.Fatalf("bucket total = %d, want 100000", total)
	}
}

func TestSpansEmitJSONL(t *testing.T) {
	var buf bytes.Buffer
	o := NewWithSink(&buf)
	o.SetClock(fakeClock(time.Millisecond))
	root := o.Span("run", F("mode", "skolem"))
	child := root.Span("round")
	child.End(F("facts", 3))
	root.End()
	o.Event("memo_hit", F("n", 1))
	if err := o.SinkErr(); err != nil {
		t.Fatal(err)
	}
	recs, err := ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Spans are written at End time: child first, then root, then the event.
	if recs[0]["name"] != "round" || recs[0]["kind"] != "span" {
		t.Fatalf("record 0 = %v", recs[0])
	}
	if recs[0]["parent"].(float64) != recs[1]["id"].(float64) {
		t.Fatal("child must point at root's id")
	}
	if recs[1]["name"] != "run" {
		t.Fatalf("record 1 = %v", recs[1])
	}
	if _, has := recs[1]["parent"]; has {
		t.Fatal("root span must omit parent")
	}
	if recs[2]["kind"] != "event" || recs[2]["name"] != "memo_hit" {
		t.Fatalf("record 2 = %v", recs[2])
	}
	attrs := recs[0]["attrs"].(map[string]any)
	if attrs["facts"].(float64) != 3 {
		t.Fatalf("child attrs = %v", attrs)
	}
	// Durations are in the registry too.
	if _, ok := o.Registry().Hist("span.round"); !ok {
		t.Fatal("span duration histogram missing")
	}
}

// TestGoldenJSONL pins the exact trace bytes of a fixed span pattern under a
// deterministic clock; any schema change must update this golden.
func TestGoldenJSONL(t *testing.T) {
	var buf bytes.Buffer
	o := NewWithSink(&buf)
	o.SetClock(fakeClock(time.Millisecond))
	run := o.Span("chase.run", F("mode", "skolem"))
	round := run.Span("chase.round", F("round", 1))
	rule := round.Span("chase.rule", F("rule", 0))
	rule.End(F("fired", 2))
	round.End(F("delta", 2))
	run.End(F("rounds", 1))
	o.Event("prover.prove", F("ok", true))
	golden := strings.Join([]string{
		`{"kind":"span","name":"chase.rule","id":3,"parent":2,"t_us":3000,"dur_us":1000,"attrs":{"fired":2,"rule":0}}`,
		`{"kind":"span","name":"chase.round","id":2,"parent":1,"t_us":2000,"dur_us":3000,"attrs":{"delta":2,"round":1}}`,
		`{"kind":"span","name":"chase.run","id":1,"t_us":1000,"dur_us":5000,"attrs":{"mode":"skolem","rounds":1}}`,
		`{"kind":"event","name":"prover.prove","t_us":7000,"attrs":{"ok":true}}`,
	}, "\n") + "\n"
	if got := buf.String(); got != golden {
		t.Fatalf("golden mismatch:\n got: %s\nwant: %s", got, golden)
	}
}

func TestConcurrentUseIsSafe(t *testing.T) {
	var buf bytes.Buffer
	o := NewWithSink(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				o.Count("c", 1)
				o.Observe("h", float64(j))
				sp := o.Span("s")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := o.Registry().Counter("c"); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	// Every emitted line must still parse as standalone JSON.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("corrupt line %q: %v", line, err)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0.00µs"},
		{750 * time.Nanosecond, "0.75µs"},
		{time.Microsecond, "1.00µs"},
		{999 * time.Microsecond, "999.00µs"},
		{time.Millisecond, "1.00ms"},
		{1500 * time.Microsecond, "1.50ms"},
		{999 * time.Millisecond, "999.00ms"},
		{time.Second, "1.00s"},
		{90 * time.Second, "90.00s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	if _, err := ParseTrace([]byte("{\"ok\":1}\nnot json\n")); err == nil {
		t.Fatal("expected parse error")
	}
	recs, err := ParseTrace([]byte(""))
	if err != nil || recs != nil {
		t.Fatalf("empty trace: %v %v", recs, err)
	}
}

func TestTraceKinds(t *testing.T) {
	recs := []map[string]any{
		{"name": "b"}, {"name": "a"}, {"name": "b"}, {"kind": "x"},
	}
	got := TraceKinds(recs)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("kinds = %v", got)
	}
}
