package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Prometheus text exposition content type served at
// /metrics.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName sanitizes a registry metric name for the Prometheus exposition:
// dots (the registry's namespace separator) and any other character outside
// [a-zA-Z0-9_:] become underscores.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in Prometheus text exposition format
// 0.0.4: counters and gauges as single samples, histograms as cumulative
// _bucket{le="…"} series plus _sum and _count. Metric families are emitted
// in sorted (sanitized) name order with one # TYPE line each.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for n, v := range r.counters {
		counters[n] = v
	}
	gauges := make(map[string]float64, len(r.gauges))
	for n, v := range r.gauges {
		gauges[n] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	type family struct {
		kind string
		emit func(name string)
	}
	// A histogram family owns its derived series names; a counter or gauge
	// that sanitizes onto one of them would emit a duplicate series, so the
	// histogram wins and the scalar is dropped from this exposition.
	reserved := make(map[string]bool, 4*len(hists))
	for n, h := range hists {
		if h.Snapshot().Count == 0 {
			continue
		}
		base := PromName(n)
		for _, s := range []string{base, base + "_bucket", base + "_sum", base + "_count"} {
			reserved[s] = true
		}
	}
	families := make(map[string]family, len(counters)+len(gauges)+len(hists))
	for n, v := range counters {
		v := v
		if name := PromName(n); !reserved[name] {
			families[name] = family{kind: "counter", emit: func(name string) {
				fmt.Fprintf(w, "%s %d\n", name, v)
			}}
		}
	}
	for n, v := range gauges {
		v := v
		if name := PromName(n); !reserved[name] {
			families[name] = family{kind: "gauge", emit: func(name string) {
				fmt.Fprintf(w, "%s %s\n", name, formatPromFloat(v))
			}}
		}
	}
	for n, h := range hists {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		families[PromName(n)] = family{kind: "histogram", emit: func(name string) {
			var cum int64
			for i, bound := range bucketBounds {
				cum += s.Buckets[i]
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatPromFloat(bound), cum)
			}
			cum += s.Buckets[len(bucketBounds)]
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(w, "%s_sum %s\n", name, formatPromFloat(s.Sum))
			fmt.Fprintf(w, "%s_count %d\n", name, cum)
		}}
	}

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := families[n]
		fmt.Fprintf(w, "# TYPE %s %s\n", n, f.kind)
		f.emit(n)
	}
}

func formatPromFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// HistJSON is the JSON shape of one histogram in a metrics snapshot.
type HistJSON struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// MetricsSnapshot is the JSON shape served at /metrics.json: the flat
// counter/gauge maps plus per-histogram percentile summaries.
type MetricsSnapshot struct {
	Counters map[string]int64    `json:"counters"`
	Gauges   map[string]float64  `json:"gauges"`
	Hists    map[string]HistJSON `json:"hists"`
}

// Snapshot copies the registry into its JSON wire shape.
func (r *Registry) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Hists:    map[string]HistJSON{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	for n, v := range r.counters {
		snap.Counters[n] = v
	}
	for n, v := range r.gauges {
		snap.Gauges[n] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()
	for n, h := range hists {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		st := s.Stats()
		snap.Hists[n] = HistJSON{
			Count: st.Count, Sum: st.Sum, Max: st.Max,
			P50: st.P50, P95: st.P95, P99: st.P99,
		}
	}
	return snap
}
