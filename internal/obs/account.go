// Per-request resource accounting. An Account rides on the request's Trace
// (recording or not — every request is accounted), is filled in by the layer
// that owns each number, and is surfaced on the wire response, the slow-query
// log, EXPLAIN output, and the exported trace.
//
// Ownership of the fields:
//
//   - serve fills the wall/queue/exec times and the heap-allocation delta;
//   - triq.EvalCtx/EvalExactCtx set the chase counters from the final
//     evaluation's chase.Stats — the same snapshot EXPLAIN reports, so the
//     account and Stats agree exactly;
//   - the prover adds memo hit/miss deltas per proof search;
//   - the trace itself maintains the span counts.
package obs

import (
	"runtime/metrics"
	"sync"
)

// Account is the per-request resource bill.
type Account struct {
	// Wall/queue/exec time, microseconds. Wall covers the request end to
	// end (queue wait + evaluation + response assembly).
	WallUS  int64 `json:"wall_us"`
	QueueUS int64 `json:"queue_us"`
	ExecUS  int64 `json:"exec_us"`

	// Chase work, from the final evaluation's chase.Stats.
	ChaseRuns         int64 `json:"chase_runs,omitempty"`
	Rounds            int64 `json:"rounds,omitempty"`
	TriggersAttempted int64 `json:"triggers_attempted,omitempty"`
	TriggersFired     int64 `json:"triggers_fired,omitempty"`
	FactsDerived      int64 `json:"facts_derived,omitempty"`
	NullsInvented     int64 `json:"nulls_invented,omitempty"`

	// Proof-search memoization, summed over the request's proof searches.
	ProverProofs     int64 `json:"prover_proofs,omitempty"`
	ProverMemoHits   int64 `json:"prover_memo_hits,omitempty"`
	ProverMemoMisses int64 `json:"prover_memo_misses,omitempty"`

	// Heap bytes allocated process-wide while the request executed
	// (from runtime/metrics /gc/heap/allocs:bytes). Approximate under
	// concurrency: concurrent requests' allocations are not separable.
	HeapAllocBytes int64 `json:"heap_alloc_bytes,omitempty"`

	// Span-tree bookkeeping (recording traces only).
	Spans        int64 `json:"spans,omitempty"`
	SpansDropped int64 `json:"spans_dropped,omitempty"`
}

// Account returns a copy of the trace's resource account.
func (t *Trace) Account() Account {
	if t == nil {
		return Account{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.account
}

// SetTimes fills the timing fields (microseconds).
func (t *Trace) SetTimes(wallUS, queueUS, execUS int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.account.WallUS = wallUS
	t.account.QueueUS = queueUS
	t.account.ExecUS = execUS
	t.mu.Unlock()
}

// SetChaseWork records the chase counters of one completed evaluation.
// Values are stored, not summed, so the account mirrors the chase.Stats of
// the final (deepest) run — the same snapshot Result.Stats and EXPLAIN
// carry; ChaseRuns counts how many evaluations wrote here (retries and
// iterative-deepening restarts each produce one full evaluation).
func (t *Trace) SetChaseWork(rounds, attempted, fired, facts, nulls int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.account.ChaseRuns++
	t.account.Rounds = rounds
	t.account.TriggersAttempted = attempted
	t.account.TriggersFired = fired
	t.account.FactsDerived = facts
	t.account.NullsInvented = nulls
	t.mu.Unlock()
}

// AddProver accumulates one proof search's memoization deltas.
func (t *Trace) AddProver(hits, misses int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.account.ProverProofs++
	t.account.ProverMemoHits += hits
	t.account.ProverMemoMisses += misses
	t.mu.Unlock()
}

// SetHeapAlloc records the request's heap-allocation delta in bytes.
func (t *Trace) SetHeapAlloc(bytes int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.account.HeapAllocBytes = bytes
	t.mu.Unlock()
}

// heapAllocSample is reused under heapAllocMu; metrics.Read is cheap (no
// stop-the-world) but the sample slice should not be reallocated per call.
var (
	heapAllocMu     sync.Mutex
	heapAllocSample = []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
)

// HeapAllocBytes returns the process's cumulative heap-allocation counter.
// Subtract two readings to bill an interval. Returns 0 if the runtime does
// not expose the metric.
func HeapAllocBytes() int64 {
	heapAllocMu.Lock()
	defer heapAllocMu.Unlock()
	metrics.Read(heapAllocSample)
	if heapAllocSample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return int64(heapAllocSample[0].Value.Uint64())
}
