package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a process-local metrics store: monotonically increasing
// counters, last-write-wins gauges, and fixed-memory log-bucketed histograms
// with p50/p95/p99/max. All methods are safe for concurrent use and are
// no-ops on a nil receiver.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*Histogram),
	}
}

// Add increments a counter by delta.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter reads a counter (0 when absent).
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// SetGauge sets a gauge.
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Gauge reads a gauge (0 when absent).
func (r *Registry) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Observe records one histogram sample. The registry lock covers only the
// map lookup; the observation itself is a lock-free atomic on the
// histogram, so concurrent observers of the same metric do not serialize.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.getHist(name).Observe(v)
}

// getHist returns the named histogram, creating it on first use.
func (r *Registry) getHist(name string) *Histogram {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	r.mu.Unlock()
	return h
}

// HistStats is a histogram summary.
type HistStats struct {
	Count         int64
	Sum, Max      float64
	P50, P95, P99 float64
}

// Hist summarizes a histogram; ok is false when no sample was recorded.
func (r *Registry) Hist(name string) (HistStats, bool) {
	if r == nil {
		return HistStats{}, false
	}
	r.mu.Lock()
	h := r.hists[name]
	r.mu.Unlock()
	if h == nil {
		return HistStats{}, false
	}
	s := h.Snapshot()
	if s.Count == 0 {
		return HistStats{}, false
	}
	return s.Stats(), true
}

// HistSnapshot returns the raw bucket snapshot of a histogram; ok is false
// when no sample was recorded. The Prometheus exposition and the EXPLAIN
// report read buckets through this.
func (r *Registry) HistSnapshot(name string) (HistSnapshot, bool) {
	if r == nil {
		return HistSnapshot{}, false
	}
	r.mu.Lock()
	h := r.hists[name]
	r.mu.Unlock()
	if h == nil {
		return HistSnapshot{}, false
	}
	s := h.Snapshot()
	return s, s.Count > 0
}

// MergeFrom folds another registry into r: counters add, gauges overwrite
// (last write wins), histograms merge bucket-wise. It backs the EXPLAIN
// path, which evaluates under a private registry for per-query isolation
// and then folds the observations back into the caller's long-lived one.
func (r *Registry) MergeFrom(other *Registry) {
	if r == nil || other == nil {
		return
	}
	other.mu.Lock()
	counters := make(map[string]int64, len(other.counters))
	for n, v := range other.counters {
		counters[n] = v
	}
	gauges := make(map[string]float64, len(other.gauges))
	for n, v := range other.gauges {
		gauges[n] = v
	}
	hists := make(map[string]*Histogram, len(other.hists))
	for n, h := range other.hists {
		hists[n] = h
	}
	other.mu.Unlock()
	for n, v := range counters {
		r.Add(n, v)
	}
	for n, v := range gauges {
		r.SetGauge(n, v)
	}
	for n, h := range hists {
		r.getHist(n).Merge(h)
	}
}

// Summary renders every metric in sorted order, one per line: counters and
// gauges as "name value", histograms as
// "name count=… p50=… p95=… p99=… max=…".
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for n, v := range r.counters {
		lines = append(lines, fmt.Sprintf("%-40s %d", n, v))
	}
	for n, v := range r.gauges {
		lines = append(lines, fmt.Sprintf("%-40s %g", n, v))
	}
	for n, h := range r.hists {
		snap := h.Snapshot()
		if snap.Count == 0 {
			continue
		}
		s := snap.Stats()
		lines = append(lines, fmt.Sprintf("%-40s count=%d p50=%.1f p95=%.1f p99=%.1f max=%.1f",
			n, s.Count, s.P50, s.P95, s.P99, s.Max))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
