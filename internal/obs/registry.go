package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Registry is a process-local metrics store: monotonically increasing
// counters, last-write-wins gauges, and fixed-size-reservoir histograms with
// p50/p95/max. All methods are safe for concurrent use and are no-ops on a
// nil receiver.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histogram),
	}
}

// Add increments a counter by delta.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter reads a counter (0 when absent).
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// SetGauge sets a gauge.
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Gauge reads a gauge (0 when absent).
func (r *Registry) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Observe records one histogram sample.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// HistStats is a histogram snapshot.
type HistStats struct {
	Count    int64
	Sum, Max float64
	P50, P95 float64
}

// Hist snapshots a histogram; ok is false when no sample was recorded.
func (r *Registry) Hist(name string) (HistStats, bool) {
	if r == nil {
		return HistStats{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil || h.count == 0 {
		return HistStats{}, false
	}
	return h.stats(), true
}

// Summary renders every metric in sorted order, one per line: counters and
// gauges as "name value", histograms as "name count=… p50=… p95=… max=…".
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for n, v := range r.counters {
		lines = append(lines, fmt.Sprintf("%-40s %d", n, v))
	}
	for n, v := range r.gauges {
		lines = append(lines, fmt.Sprintf("%-40s %g", n, v))
	}
	for n, h := range r.hists {
		if h.count == 0 {
			continue
		}
		s := h.stats()
		lines = append(lines, fmt.Sprintf("%-40s count=%d p50=%.1f p95=%.1f max=%.1f",
			n, s.Count, s.P50, s.P95, s.Max))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// maxSamples bounds a histogram reservoir; when full, the reservoir is
// decimated (every second sample kept) and the sampling stride doubles, so
// quantiles stay approximately right at bounded memory for any stream
// length.
const maxSamples = 4096

type histogram struct {
	count   int64
	sum     float64
	max     float64
	samples []float64
	stride  int64 // record every stride-th observation
}

func newHistogram() *histogram { return &histogram{stride: 1} }

func (h *histogram) observe(v float64) {
	h.count++
	h.sum += v
	if h.count == 1 || v > h.max {
		h.max = v
	}
	if h.count%h.stride != 0 {
		return
	}
	h.samples = append(h.samples, v)
	if len(h.samples) >= maxSamples {
		kept := h.samples[:0]
		for i := 1; i < len(h.samples); i += 2 {
			kept = append(kept, h.samples[i])
		}
		h.samples = kept
		h.stride *= 2
	}
}

func (h *histogram) stats() HistStats {
	s := HistStats{Count: h.count, Sum: h.sum, Max: h.max}
	if len(h.samples) == 0 {
		return s
	}
	sorted := append([]float64(nil), h.samples...)
	sort.Float64s(sorted)
	s.P50 = quantile(sorted, 0.50)
	s.P95 = quantile(sorted, 0.95)
	return s
}

// quantile reads the q-th quantile from a sorted sample by nearest-rank.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
