package obs

import (
	"runtime"
	"testing"
	"time"
)

func TestHealthCollectorGauges(t *testing.T) {
	reg := NewRegistry()
	h := StartHealth(reg, 5*time.Millisecond)
	if h == nil {
		t.Fatal("StartHealth returned nil with a registry")
	}
	defer h.Stop()

	// One synchronous sample ran inside StartHealth, so the gauges exist
	// immediately.
	if g := reg.Gauge("go.goroutines"); g <= 0 {
		t.Errorf("go.goroutines = %g, want > 0", g)
	}
	if g := reg.Gauge("go.heap_inuse_bytes"); g <= 0 {
		t.Errorf("go.heap_inuse_bytes = %g, want > 0", g)
	}

	// Force GC cycles and wait for a tick so the pause histogram fills.
	for i := 0; i < 3; i++ {
		runtime.GC()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Gauge("go.gc_pause_p99_us") > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if reg.Gauge("go.gc_pause_p99_us") <= 0 {
		t.Error("go.gc_pause_p99_us never populated after forced GCs")
	}

	h.Stop()
	h.Stop() // idempotent
}

func TestHealthCollectorNilSafe(t *testing.T) {
	if h := StartHealth(nil, time.Second); h != nil {
		t.Fatal("StartHealth(nil) should return nil")
	}
	var h *HealthCollector
	h.Stop() // must not panic
}
