// Package obs is the engine-wide observability layer: a process-local
// metrics registry (counters, gauges, histograms with p50/p95/max), a
// hierarchical span tracer with wall-clock timings, and a structured JSONL
// event sink. It has no dependencies outside the standard library and no
// knowledge of the query engine; the evaluation layers (chase, ProofTree,
// SPARQL translation) thread an *Obs handle through their options.
//
// Instrumentation is off by default and nil-safe throughout: a nil *Obs (and
// a nil *Span derived from one) is a valid handle on which every method is a
// cheap no-op, so instrumented code never branches on "is tracing on" beyond
// the nil checks the methods perform themselves. Constructing an Obs with
// New enables the in-memory registry; NewWithSink additionally streams one
// JSON object per completed span or event to a writer.
//
// JSONL schema (one object per line):
//
//	{"kind":"span","name":"chase.round","id":2,"parent":1,"t_us":10,"dur_us":42,"attrs":{"round":1}}
//	{"kind":"event","name":"prover.memo_hit","t_us":55,"attrs":{"key_len":12}}
//
// t_us is microseconds since the Obs was created; span ids are unique per
// Obs and parent is 0 for root spans. Attrs hold only JSON-encodable scalar
// values supplied at instrumentation sites.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// KV is one attribute on a span or event.
type KV struct {
	K string
	V any
}

// F builds an attribute; the name is short for "field".
func F(k string, v any) KV { return KV{K: k, V: v} }

// Obs bundles the registry, the tracer state, and the optional JSONL sink.
// The zero value is not usable; use New or NewWithSink. A nil *Obs is the
// canonical "observability off" handle.
type Obs struct {
	reg *Registry

	mu       sync.Mutex
	w        io.Writer // nil when no sink is attached
	now      func() time.Time
	start    time.Time
	nextSpan int64
	sinkErr  error
}

// New returns an Obs with an in-memory registry and no event sink.
func New() *Obs {
	o := &Obs{reg: NewRegistry(), now: time.Now}
	o.start = o.now()
	return o
}

// NewWithSink returns an Obs that additionally writes one JSON line per
// completed span or emitted event to w. The caller owns w's lifetime.
func NewWithSink(w io.Writer) *Obs {
	o := New()
	o.w = w
	return o
}

// SetClock replaces the wall clock; intended for deterministic tests and
// golden traces. It also resets the trace epoch to the new clock's current
// time. Must be called before any span is started.
func (o *Obs) SetClock(now func() time.Time) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.now = now
	o.start = now()
}

// Enabled reports whether the handle actually records anything.
func (o *Obs) Enabled() bool { return o != nil }

// Registry exposes the metrics registry (nil when o is nil).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Count adds delta to the named counter.
func (o *Obs) Count(name string, delta int64) {
	if o == nil {
		return
	}
	o.reg.Add(name, delta)
}

// Gauge sets the named gauge.
func (o *Obs) Gauge(name string, v float64) {
	if o == nil {
		return
	}
	o.reg.SetGauge(name, v)
}

// Observe records one histogram sample.
func (o *Obs) Observe(name string, v float64) {
	if o == nil {
		return
	}
	o.reg.Observe(name, v)
}

// SinkErr returns the first write error the sink encountered, if any.
func (o *Obs) SinkErr() error {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sinkErr
}

// Summary renders the registry in a stable human-readable form.
func (o *Obs) Summary() string {
	if o == nil {
		return ""
	}
	return o.reg.Summary()
}

// Span is one node of the hierarchical trace. A nil *Span is a no-op.
//
// A span can be wired into a request-scoped Trace (see trace.go): spans
// created by StartSpan on a context carrying a recording trace, and all
// their descendants via (s *Span).Span, additionally append nodes to that
// trace's span tree. Such a span is valid even with a nil Obs handle.
type Span struct {
	o      *Obs
	name   string
	id     int64
	parent int64
	start  time.Time
	attrs  []KV

	tr   *Trace
	node *TraceSpan // nil when the trace dropped the node (span cap)
}

// Span starts a root span.
func (o *Obs) Span(name string, kv ...KV) *Span {
	return o.startSpan(name, 0, kv)
}

// Span starts a child span; when the parent belongs to a recording trace the
// child joins the same span tree.
func (s *Span) Span(name string, kv ...KV) *Span {
	if s == nil {
		return nil
	}
	child := s.o.startSpan(name, s.id, kv)
	if s.tr.Recording() {
		if child == nil {
			child = &Span{name: name, start: time.Now(), attrs: kv}
		}
		child.tr = s.tr
		var pnode SpanID
		if s.node != nil {
			pnode = s.node.ID
		}
		child.node = s.tr.newNode(name, pnode, child.start)
	}
	return child
}

func (o *Obs) startSpan(name string, parent int64, kv []KV) *Span {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	o.nextSpan++
	id := o.nextSpan
	start := o.now()
	o.mu.Unlock()
	return &Span{o: o, name: name, id: id, parent: parent, start: start, attrs: kv}
}

// Attr appends an attribute to the span.
func (s *Span) Attr(k string, v any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, KV{K: k, V: v})
}

// TraceSpanID returns the span's id within its request trace, or the zero id
// when the span is not part of a recording trace (or was dropped at the span
// cap).
func (s *Span) TraceSpanID() SpanID {
	if s == nil || s.node == nil {
		return SpanID{}
	}
	return s.node.ID
}

// record is the JSONL line shape shared by spans and events. Spans that
// belong to a request trace carry the W3C ids alongside the per-Obs ones.
type record struct {
	Kind   string         `json:"kind"`
	Name   string         `json:"name"`
	ID     int64          `json:"id,omitempty"`
	Parent int64          `json:"parent,omitempty"`
	Trace  string         `json:"trace_id,omitempty"`
	SpanID string         `json:"span_id,omitempty"`
	TUs    int64          `json:"t_us"`
	DurUs  int64          `json:"dur_us,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// End closes the span: its duration is recorded in the histogram
// "span.<name>" (microseconds), its trace node (if any) is stamped, and,
// when a sink is attached, one JSONL line is written. Extra attributes may
// be supplied at close time.
func (s *Span) End(kv ...KV) {
	if s == nil {
		return
	}
	var attrs []KV
	if len(s.attrs) > 0 || len(kv) > 0 {
		attrs = make([]KV, 0, len(s.attrs)+len(kv))
		attrs = append(append(attrs, s.attrs...), kv...)
	}
	o := s.o
	if o == nil { // trace-only span
		s.tr.closeNode(s.node, time.Now(), attrs)
		return
	}
	o.mu.Lock()
	end := o.now()
	epoch := o.start
	o.mu.Unlock()
	s.tr.closeNode(s.node, end, attrs)
	dur := end.Sub(s.start)
	o.reg.Observe("span."+s.name, float64(dur.Microseconds()))
	if o.w == nil {
		return
	}
	rec := record{
		Kind:   "span",
		Name:   s.name,
		ID:     s.id,
		Parent: s.parent,
		TUs:    s.start.Sub(epoch).Microseconds(),
		DurUs:  dur.Microseconds(),
		Attrs:  attrMap(attrs),
	}
	if s.tr != nil {
		rec.Trace = s.tr.ID().String()
		if s.node != nil {
			rec.SpanID = s.node.ID.String()
		}
	}
	o.write(rec)
}

// Event emits a point-in-time JSONL line (no-op without a sink).
func (o *Obs) Event(name string, kv ...KV) {
	if o == nil || o.w == nil {
		return
	}
	o.mu.Lock()
	t := o.now().Sub(o.start)
	o.mu.Unlock()
	o.write(record{Kind: "event", Name: name, TUs: t.Microseconds(), Attrs: attrMap(kv)})
}

func (o *Obs) write(r record) {
	buf, err := json.Marshal(r)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, err := o.w.Write(buf); err != nil && o.sinkErr == nil {
		o.sinkErr = err
	}
}

func attrMap(kv []KV) map[string]any {
	if len(kv) == 0 {
		return nil
	}
	m := make(map[string]any, len(kv))
	for _, a := range kv {
		m[a.K] = a.V
	}
	return m
}

// workerMetricCache memoizes WorkerMetric's formatted names per (base,
// worker) so the chase hot loop doesn't re-concatenate (and re-allocate)
// the same key on every trigger batch. Worker ids are small and dense, so
// a slice indexed by worker under an RWMutex keeps the hit path to one
// read-lock and two slice reads.
var (
	workerMetricMu    sync.RWMutex
	workerMetricCache = map[string][]string{}
)

// WorkerMetric derives a per-worker metric name from a base name, e.g.
// WorkerMetric("chase.worker.shards", 3) = "chase.worker.shards.w3". Keeping
// the worker id in the name (not a label) fits the flat counter registry
// while still letting dashboards split load across a worker pool. Names are
// cached per (base, worker): the fast path performs no allocation.
func WorkerMetric(base string, worker int) string {
	if worker < 0 {
		return base + ".w" + strconv.Itoa(worker)
	}
	workerMetricMu.RLock()
	names := workerMetricCache[base]
	if worker < len(names) && names[worker] != "" {
		name := names[worker]
		workerMetricMu.RUnlock()
		return name
	}
	workerMetricMu.RUnlock()

	workerMetricMu.Lock()
	names = workerMetricCache[base]
	for len(names) <= worker {
		names = append(names, "")
	}
	if names[worker] == "" {
		names[worker] = base + ".w" + strconv.Itoa(worker)
	}
	workerMetricCache[base] = names
	name := names[worker]
	workerMetricMu.Unlock()
	return name
}

// FormatDuration renders a duration on a fixed µs/ms/s unit ladder with two
// decimals, so columns of durations align across tables.
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// ParseTrace parses a JSONL trace produced by a sink, one record per line.
// It is used by tests and by tooling that post-processes traces.
func ParseTrace(data []byte) ([]map[string]any, error) {
	var out []map[string]any
	for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", i+1, err)
		}
		out = append(out, m)
	}
	return out, nil
}

// TraceKinds returns the set of distinct "name" values of the parsed trace,
// sorted. Handy for asserting which event kinds a run produced.
func TraceKinds(records []map[string]any) []string {
	seen := map[string]bool{}
	for _, r := range records {
		if n, ok := r["name"].(string); ok {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
