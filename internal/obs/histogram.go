package obs

import (
	"math"
	"sync/atomic"
)

// The histogram layer replaces an earlier bounded-reservoir design with
// fixed log-spaced buckets: observation values land in 1-2-5 buckets per
// decade from 1 up to 1e12 (enough for twelve decades of microseconds —
// about eleven days — or of fact counts), plus an overflow bucket. Memory
// per histogram is therefore constant and Observe is lock-free: bucket
// counts are atomic adds and sum/max are CAS loops over float bits, so the
// chase hot loop can record per-round timings without serializing workers.
//
// Quantiles interpolate linearly inside the winning bucket. On the bucket
// bounds themselves this is exact for uniform streams (p95 of 1..100 is
// exactly 95); in general the error is bounded by the 1-2-5 bucket width
// (≤ 60% of the value), which is the usual trade for constant-memory
// latency histograms and matches what the Prometheus exposition carries
// anyway.

// histBuckets is the fixed bucket count: 3 bounds per decade over 12
// decades, a final 1e12 bound, and the +Inf overflow bucket.
const histBuckets = 12*3 + 1 + 1

// bucketBounds holds the finite upper bounds (inclusive) of each bucket;
// the last bucket, at index len(bucketBounds), is (1e12, +Inf).
var bucketBounds = makeBounds()

func makeBounds() [histBuckets - 1]float64 {
	var b [histBuckets - 1]float64
	i, p := 0, 1.0
	for d := 0; d < 12; d++ {
		b[i], b[i+1], b[i+2] = p, 2*p, 5*p
		i += 3
		p *= 10
	}
	b[i] = p // 1e12
	return b
}

// BucketBounds returns the finite bucket upper bounds (a copy), smallest
// first. The overflow bucket, (last, +Inf), is implied. Exposed for the
// Prometheus exposition and for tests that assert boundary behavior.
func BucketBounds() []float64 {
	out := make([]float64, len(bucketBounds))
	copy(out, bucketBounds[:])
	return out
}

// bucketIndex maps a value to its bucket: the smallest i with
// v <= bucketBounds[i], or the overflow bucket. Values below the first
// bound (including negatives and NaN, which compare false throughout)
// land in bucket 0.
func bucketIndex(v float64) int {
	if math.IsNaN(v) {
		return 0
	}
	lo, hi := 0, len(bucketBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= bucketBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Histogram is a fixed-memory, lock-free log-bucketed histogram. The zero
// value is ready to use; all methods are safe for concurrent use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if old != 0 && math.Float64frombits(old) >= v {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Merge folds a snapshot of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	s := other.Snapshot()
	for i, n := range s.Buckets {
		if n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(s.Count)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+s.Sum)) {
			break
		}
	}
	if s.Count > 0 {
		for {
			old := h.max.Load()
			if old != 0 && math.Float64frombits(old) >= s.Max {
				break
			}
			if h.max.CompareAndSwap(old, math.Float64bits(s.Max)) {
				break
			}
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram. Under concurrent
// Observe the totals may trail the buckets by in-flight samples; quantile
// math therefore works off the bucket sums, not Count.
type HistSnapshot struct {
	Count   int64
	Sum     float64
	Max     float64
	Buckets [histBuckets]int64 // per-bucket counts, not cumulative
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sum.Load())
	s.Max = math.Float64frombits(h.max.Load())
	return s
}

// Quantile reads the q-th quantile (0 ≤ q ≤ 1) with linear interpolation
// inside the winning bucket. The overflow bucket reports the observed max.
func (s HistSnapshot) Quantile(q float64) float64 {
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	if target > float64(total) {
		target = float64(total)
	}
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) < target {
			cum += n
			continue
		}
		if i >= len(bucketBounds) {
			return s.Max // overflow bucket: best available point estimate
		}
		lo := 0.0
		if i > 0 {
			lo = bucketBounds[i-1]
		}
		hi := bucketBounds[i]
		v := lo + (target-float64(cum))/float64(n)*(hi-lo)
		if s.Max != 0 && v > s.Max {
			v = s.Max
		}
		return v
	}
	return s.Max
}

// Stats summarizes the snapshot with the registry's standard percentiles.
func (s HistSnapshot) Stats() HistStats {
	return HistStats{
		Count: s.Count,
		Sum:   s.Sum,
		Max:   s.Max,
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
	}
}
