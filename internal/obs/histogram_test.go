package obs

import (
	"bufio"
	"bytes"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	bounds := BucketBounds()
	if len(bounds) != histBuckets-1 {
		t.Fatalf("got %d bounds, want %d", len(bounds), histBuckets-1)
	}
	// 1-2-5 per decade, strictly increasing, 1 first and 1e12 last.
	if bounds[0] != 1 || bounds[len(bounds)-1] != 1e12 {
		t.Fatalf("bounds span [%g, %g], want [1, 1e12]", bounds[0], bounds[len(bounds)-1])
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not increasing at %d: %g <= %g", i, bounds[i], bounds[i-1])
		}
	}
	// A value on a bound lands in that bound's bucket (le is inclusive);
	// just above it lands in the next.
	for i, b := range bounds {
		if got := bucketIndex(b); got != i {
			t.Fatalf("bucketIndex(%g) = %d, want %d", b, got, i)
		}
		if got := bucketIndex(b * 1.0000001); got != i+1 {
			t.Fatalf("bucketIndex(just above %g) = %d, want %d", b, got, i+1)
		}
	}
	// Below-range and pathological inputs land in bucket 0; above-range in
	// the overflow bucket.
	for _, v := range []float64{0, -1, 0.5, math.Inf(-1), math.NaN()} {
		if got := bucketIndex(v); got != 0 {
			t.Fatalf("bucketIndex(%g) = %d, want 0", v, got)
		}
	}
	for _, v := range []float64{2e12, math.Inf(1)} {
		if got := bucketIndex(v); got != histBuckets-1 {
			t.Fatalf("bucketIndex(%g) = %d, want overflow %d", v, got, histBuckets-1)
		}
	}
}

func TestHistogramPercentileMath(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Max != 100 || s.Sum != 5050 {
		t.Fatalf("snapshot = %+v", s)
	}
	// Uniform 1..100 hits the 1-2-5 bounds exactly under linear
	// interpolation: p50 = 50, p95 = 95, p99 = 99.
	for _, c := range []struct{ q, want float64 }{
		{0.50, 50}, {0.95, 95}, {0.99, 99}, {1.0, 100},
	} {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("q%.2f = %g, want %g", c.q, got, c.want)
		}
	}
	st := s.Stats()
	if st.P50 != 50 || st.P95 != 95 || st.P99 != 99 {
		t.Fatalf("stats = %+v", st)
	}

	// A single observation reports itself at every quantile (interpolation
	// is clamped to the observed max).
	one := NewHistogram()
	one.Observe(3)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := one.Snapshot().Quantile(q); got > 3 {
			t.Fatalf("single-sample q%g = %g, want ≤ 3", q, got)
		}
	}

	// Overflow-bucket quantiles fall back to the observed max.
	over := NewHistogram()
	over.Observe(5e12)
	if got := over.Snapshot().Quantile(0.5); got != 5e12 {
		t.Fatalf("overflow q50 = %g, want 5e12", got)
	}

	// Empty histogram: all zero.
	if got := NewHistogram().Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty q50 = %g, want 0", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 50; i++ {
		a.Observe(float64(i))
	}
	for i := 51; i <= 100; i++ {
		b.Observe(float64(i))
	}
	a.Merge(b)
	a.Merge(nil) // no-op
	s := a.Snapshot()
	if s.Count != 100 || s.Sum != 5050 || s.Max != 100 {
		t.Fatalf("merged snapshot = %+v", s)
	}
	if got := s.Quantile(0.95); math.Abs(got-95) > 1e-9 {
		t.Fatalf("merged p95 = %g, want 95", got)
	}
	// Merging into an empty histogram copies the max.
	c := NewHistogram()
	c.Merge(a)
	if got := c.Snapshot().Max; got != 100 {
		t.Fatalf("empty-merge max = %g, want 100", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const goroutines, perG = 8, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG + i + 1))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	n := int64(goroutines * perG)
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	if s.Max != float64(n) {
		t.Fatalf("max = %g, want %g", s.Max, float64(n))
	}
	if want := float64(n) * float64(n+1) / 2; s.Sum != want {
		t.Fatalf("sum = %g, want %g", s.Sum, want)
	}
	var total int64
	for _, c := range s.Buckets {
		total += c
	}
	if total != n {
		t.Fatalf("bucket total = %d, want %d", total, n)
	}
}

// parsePromText is a minimal Prometheus text-format 0.0.4 parser used by the
// exposition tests here and in internal/serve: it validates line shapes and
// returns samples keyed by metric name (with the label part kept verbatim)
// plus the TYPE of each family.
func parsePromText(t *testing.T, data []byte) (samples map[string]float64, types map[string]string) {
	t.Helper()
	samples, types = map[string]float64{}, map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(rest) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch rest[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			types[rest[0]] = rest[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unterminated labels in %q", line)
			}
			name = key[:i]
		}
		for _, c := range name {
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':') {
				t.Fatalf("invalid metric name char %q in %q", c, line)
			}
		}
		samples[key] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples, types
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Add("chase.triggers_fired", 7)
	r.SetGauge("serve.queue_depth", 3)
	for i := 1; i <= 100; i++ {
		r.Observe("serve.latency_us", float64(i))
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()

	samples, types := parsePromText(t, buf.Bytes())
	if types["chase_triggers_fired"] != "counter" {
		t.Fatalf("counter family missing:\n%s", out)
	}
	if types["serve_queue_depth"] != "gauge" {
		t.Fatalf("gauge family missing:\n%s", out)
	}
	if types["serve_latency_us"] != "histogram" {
		t.Fatalf("histogram family missing:\n%s", out)
	}
	if samples["chase_triggers_fired"] != 7 || samples["serve_queue_depth"] != 3 {
		t.Fatalf("sample values wrong:\n%s", out)
	}
	// Histogram series: cumulative buckets ending at +Inf == count, plus sum.
	if samples[`serve_latency_us_bucket{le="+Inf"}`] != 100 {
		t.Fatalf("+Inf bucket != count:\n%s", out)
	}
	if samples[`serve_latency_us_bucket{le="50"}`] != 50 {
		t.Fatalf(`le="50" bucket should hold 50 cumulative samples:`+"\n%s", out)
	}
	if samples["serve_latency_us_count"] != 100 || samples["serve_latency_us_sum"] != 5050 {
		t.Fatalf("sum/count wrong:\n%s", out)
	}
	// Cumulative buckets never decrease.
	var prev float64
	for _, b := range BucketBounds() {
		key := `serve_latency_us_bucket{le="` + formatPromFloat(b) + `"}`
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s:\n%s", key, out)
		}
		if v < prev {
			t.Fatalf("bucket %s decreased (%g < %g)", key, v, prev)
		}
		prev = v
	}
	// Families are sorted by name.
	var familyOrder []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			familyOrder = append(familyOrder, strings.Fields(line)[2])
		}
	}
	for i := 1; i < len(familyOrder); i++ {
		if familyOrder[i] < familyOrder[i-1] {
			t.Fatalf("families out of order: %v", familyOrder)
		}
	}
	// Nil registry writes nothing.
	var nilBuf bytes.Buffer
	(*Registry)(nil).WritePrometheus(&nilBuf)
	if nilBuf.Len() != 0 {
		t.Fatal("nil registry must write nothing")
	}
}

func TestRegistrySnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Add("c", 2)
	r.SetGauge("g", 1.5)
	for i := 1; i <= 100; i++ {
		r.Observe("h", float64(i))
	}
	snap := r.Snapshot()
	if snap.Counters["c"] != 2 || snap.Gauges["g"] != 1.5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	h := snap.Hists["h"]
	if h.Count != 100 || h.P50 != 50 || h.P95 != 95 || h.P99 != 99 || h.Max != 100 {
		t.Fatalf("hist snapshot = %+v", h)
	}
	// Nil registry yields the empty (but non-nil-map) shape.
	nilSnap := (*Registry)(nil).Snapshot()
	if nilSnap.Counters == nil || nilSnap.Gauges == nil || nilSnap.Hists == nil {
		t.Fatal("nil registry snapshot must have non-nil maps")
	}
}

func TestWorkerMetricCached(t *testing.T) {
	if got := WorkerMetric("chase.worker.shards", 3); got != "chase.worker.shards.w3" {
		t.Fatalf("WorkerMetric = %q", got)
	}
	// Second call returns the identical cached string.
	a := WorkerMetric("chase.worker.triggers", 5)
	b := WorkerMetric("chase.worker.triggers", 5)
	if a != b {
		t.Fatalf("cache mismatch: %q vs %q", a, b)
	}
	if got := WorkerMetric("base", -1); got != "base.w-1" {
		t.Fatalf("negative worker = %q", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = WorkerMetric("chase.worker.shards", 3)
	})
	if allocs != 0 {
		t.Fatalf("cached WorkerMetric allocates %g per call, want 0", allocs)
	}
	// Concurrent mixed hit/miss traffic is race-free.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := WorkerMetric("conc", i%16); got != "conc.w"+strconv.Itoa(i%16) {
					t.Errorf("WorkerMetric(conc, %d) = %q", i%16, got)
				}
			}
		}(g)
	}
	wg.Wait()
}
