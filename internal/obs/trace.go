// Request-scoped distributed tracing: W3C traceparent propagation, seedable
// trace/span identifiers, deterministic head sampling, and context-carried
// span trees. A Trace is the per-request container; the Span type in obs.go
// doubles as the tree node builder, so every existing instrumentation site
// (chase rounds, translation ops, prover proofs) joins the tree without
// changes — only root-ish spans switch to the ctx-aware StartSpan.
//
// Like the rest of the package, everything is nil-safe: a nil *Trace is the
// canonical "tracing off" handle and all methods on it are cheap no-ops.
package obs

import (
	"context"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"
)

// TraceID is the 16-byte W3C trace identifier.
type TraceID [16]byte

// SpanID is the 8-byte W3C span identifier.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// ParseTraceID parses a 32-hex-digit trace id.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("obs: trace id must be 32 hex digits, got %d", len(s))
	}
	if _, err := hex.Decode(id[:], []byte(strings.ToLower(s))); err != nil {
		return id, fmt.Errorf("obs: bad trace id: %w", err)
	}
	if id.IsZero() {
		return id, fmt.Errorf("obs: all-zero trace id is invalid")
	}
	return id, nil
}

// FlagSampled is the traceparent trace-flags bit meaning "the caller sampled
// this request"; we honor it by recording the full span tree.
const FlagSampled byte = 0x01

// ParseTraceparent parses a W3C traceparent header
// (version-traceid-spanid-flags, e.g.
// "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"). Only version
// 00 fields are interpreted; a higher version is accepted as long as the
// first four fields are well-formed, per the spec's forward-compatibility
// rule. Version ff and all-zero ids are rejected.
func ParseTraceparent(h string) (tid TraceID, sid SpanID, flags byte, err error) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 {
		return tid, sid, 0, fmt.Errorf("obs: traceparent needs 4 fields, got %d", len(parts))
	}
	ver, perr := hex.DecodeString(parts[0])
	if perr != nil || len(ver) != 1 || ver[0] == 0xff {
		return tid, sid, 0, fmt.Errorf("obs: bad traceparent version %q", parts[0])
	}
	if ver[0] == 0 && len(parts) != 4 {
		return tid, sid, 0, fmt.Errorf("obs: version-00 traceparent must have exactly 4 fields")
	}
	if tid, err = ParseTraceID(parts[1]); err != nil {
		return tid, sid, 0, err
	}
	if len(parts[2]) != 16 {
		return tid, sid, 0, fmt.Errorf("obs: span id must be 16 hex digits, got %d", len(parts[2]))
	}
	if _, err = hex.Decode(sid[:], []byte(strings.ToLower(parts[2]))); err != nil {
		return tid, sid, 0, fmt.Errorf("obs: bad span id: %w", err)
	}
	if sid.IsZero() {
		return tid, sid, 0, fmt.Errorf("obs: all-zero span id is invalid")
	}
	fb, perr := hex.DecodeString(parts[3])
	if perr != nil || len(fb) != 1 {
		return tid, sid, 0, fmt.Errorf("obs: bad trace flags %q", parts[3])
	}
	return tid, sid, fb[0], nil
}

// FormatTraceparent renders a version-00 traceparent header value.
func FormatTraceparent(tid TraceID, sid SpanID, flags byte) string {
	return fmt.Sprintf("00-%s-%s-%02x", tid, sid, flags)
}

// IDSource generates trace and span ids from a splitmix64 stream. A zero
// seed derives one from the wall clock; a fixed seed makes id sequences (and
// therefore head-sampling decisions) reproducible for tests and benchmarks.
// Safe for concurrent use.
type IDSource struct {
	mu    sync.Mutex
	state uint64
}

// NewIDSource returns an id generator; seed 0 picks a clock-derived seed.
func NewIDSource(seed int64) *IDSource {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &IDSource{state: uint64(seed)}
}

func (s *IDSource) next() uint64 {
	s.mu.Lock()
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	s.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TraceID returns a fresh non-zero trace id.
func (s *IDSource) TraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		putUint64(id[0:8], s.next())
		putUint64(id[8:16], s.next())
	}
	return id
}

// SpanID returns a fresh non-zero span id.
func (s *IDSource) SpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		putUint64(id[:], s.next())
	}
	return id
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// Sampler makes the head-sampling decision as a pure function of the trace
// id: fnv64(seed, id) < rate×2^64. The same (rate, seed) therefore samples
// the same ids everywhere — deterministic for tests, and consistent across
// restarts of the same configuration.
type Sampler struct {
	threshold uint64
	seed      uint64
	all       bool
}

// NewSampler builds a sampler keeping the given fraction of traces
// (clamped to [0,1]).
func NewSampler(rate float64, seed int64) *Sampler {
	if rate >= 1 {
		return &Sampler{all: true}
	}
	if rate < 0 {
		rate = 0
	}
	return &Sampler{threshold: uint64(rate * float64(1<<63) * 2), seed: uint64(seed)}
}

// Sampled reports the head-sampling decision for the id.
func (s *Sampler) Sampled(id TraceID) bool {
	if s == nil {
		return false
	}
	if s.all {
		return true
	}
	h := uint64(14695981039346656037) ^ s.seed
	for _, b := range id {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h < s.threshold
}

// TraceSpan is one finished (or in-flight) node of a trace's span tree.
type TraceSpan struct {
	ID     SpanID
	Parent SpanID // zero for the root (or the remote parent from traceparent)
	Name   string
	Start  time.Time
	End    time.Time // zero while the span is open
	Attrs  []KV
}

// DefaultMaxSpans bounds the recorded span tree per trace; spans beyond the
// cap are counted (Account.SpansDropped) but not stored.
const DefaultMaxSpans = 4096

// Trace is the per-request container: identity, the recording decision, the
// span tree, and the resource account. Build one with NewTrace, carry it in
// the request context with ContextWithTrace, and close it with Finish.
type Trace struct {
	id        TraceID
	ids       *IDSource
	recording bool
	remote    SpanID // parent span id from an incoming traceparent, if any
	maxSpans  int

	mu       sync.Mutex
	spans    []*TraceSpan
	dropped  int64
	account  Account
	start    time.Time
	end      time.Time
	slow     bool
	pinned   bool
	rootName string
}

// NewTrace builds a trace. recording selects whether a full span tree is
// kept; a non-recording trace still carries the resource account, so every
// request is accounted even when only a fraction is traced in detail.
func NewTrace(id TraceID, ids *IDSource, recording bool) *Trace {
	if ids == nil {
		ids = NewIDSource(0)
	}
	return &Trace{id: id, ids: ids, recording: recording, maxSpans: DefaultMaxSpans, start: time.Now()}
}

// SetRemoteParent records the caller's span id from an incoming traceparent;
// the root span's Parent points at it so the caller can stitch trees.
func (t *Trace) SetRemoteParent(sid SpanID) {
	if t != nil {
		t.remote = sid
	}
}

// SetMaxSpans overrides the recorded-span cap (0 keeps the default).
func (t *Trace) SetMaxSpans(n int) {
	if t != nil && n > 0 {
		t.maxSpans = n
	}
}

// ID returns the trace id (zero for a nil trace).
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// Recording reports whether the span tree is being kept.
func (t *Trace) Recording() bool { return t != nil && t.recording }

// MarkSlow tags the trace as slow; the store's tail sampling always keeps
// slow traces, and prefers evicting fast ones.
func (t *Trace) MarkSlow() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.slow = true
	t.mu.Unlock()
}

// Slow reports whether MarkSlow was called.
func (t *Trace) Slow() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.slow
}

// Pin exempts the trace from store eviction entirely — the SLO watchdog pins
// the traces implicated in a breach so they are still inspectable when the
// operator arrives.
func (t *Trace) Pin() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.pinned = true
	t.mu.Unlock()
}

// Pinned reports whether Pin was called.
func (t *Trace) Pinned() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pinned
}

// Finish closes the trace. Any span node still open (a panic or a hard
// cancellation skipped its End) is force-closed at the trace end time so the
// exported tree never contains dangling spans.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.end = time.Now()
	for _, n := range t.spans {
		if n.End.IsZero() {
			n.End = t.end
		}
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded span nodes in start order.
func (t *Trace) Spans() []TraceSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceSpan, len(t.spans))
	for i, n := range t.spans {
		out[i] = *n
	}
	return out
}

// newNode allocates a tree node (nil when not recording or over the cap).
func (t *Trace) newNode(name string, parent SpanID, start time.Time) *TraceSpan {
	if t == nil || !t.recording {
		return nil
	}
	if parent.IsZero() {
		parent = t.remote
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.maxSpans {
		t.dropped++
		t.account.SpansDropped++
		return nil
	}
	n := &TraceSpan{ID: t.ids.SpanID(), Parent: parent, Name: name, Start: start}
	t.spans = append(t.spans, n)
	t.account.Spans++
	if t.rootName == "" {
		t.rootName = name
	}
	return n
}

// closeNode stamps the end time and attributes on a node.
func (t *Trace) closeNode(n *TraceSpan, end time.Time, attrs []KV) {
	if t == nil || n == nil {
		return
	}
	t.mu.Lock()
	if n.End.IsZero() {
		n.End = end
		n.Attrs = attrs
	}
	t.mu.Unlock()
}

// traceKey and spanKey carry the active trace and the ambient parent span in
// a context.Context.
type traceKey struct{}
type spanKey struct{}

// ContextWithTrace attaches the trace to the context.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// RecordingTrace reports whether the context carries a recording trace.
func RecordingTrace(ctx context.Context) bool { return TraceFrom(ctx).Recording() }

// ContextWithSpan sets the ambient parent span; StartSpan-created spans do
// this automatically.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the context's ambient span, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a span parented on the context's ambient span, wired both
// into the Obs registry/sink (when o, or the ambient span's handle, is
// non-nil) and into the context's trace tree (when it is recording). The
// returned context carries the new span as the ambient parent. With neither
// an Obs nor a recording trace it returns (ctx, nil) — the usual nil-safe
// no-op span.
func StartSpan(ctx context.Context, o *Obs, name string, kv ...KV) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	tr := TraceFrom(ctx)
	if o == nil && parent != nil {
		o = parent.o // keep registry timings flowing even if the callee lost the handle
	}
	var sp *Span
	if o != nil {
		pid := int64(0)
		if parent != nil && parent.o == o {
			pid = parent.id
		}
		sp = o.startSpan(name, pid, kv)
	}
	if tr.Recording() {
		if sp == nil {
			sp = &Span{name: name, start: time.Now(), attrs: kv}
		}
		var pnode SpanID
		if parent != nil && parent.tr == tr && parent.node != nil {
			pnode = parent.node.ID
		}
		sp.tr = tr
		sp.node = tr.newNode(name, pnode, sp.start)
	}
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}
