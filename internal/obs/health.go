// Runtime health collector: a background sampler that periodically folds Go
// runtime vitals into a Registry as gauges (plus a GC-pause histogram), so
// /metrics answers "is the process itself healthy" alongside the engine
// metrics. Sampling uses runtime.ReadMemStats at a coarse interval — its
// brief stop-the-world is negligible at the default 10s cadence.
package obs

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// HealthCollector owns the sampling goroutine; build with StartHealth and
// stop with Stop (idempotent).
type HealthCollector struct {
	reg      *Registry
	interval time.Duration

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	lastNumGC uint32
	pauses    []float64 // retained window of recent GC pauses, µs
}

// healthPauseWindow bounds the retained GC-pause window used for the p99
// gauge.
const healthPauseWindow = 256

// StartHealth begins sampling runtime vitals into reg every interval
// (0 selects 10s). Returns nil when reg is nil. Exported gauges:
//
//	go.goroutines        — runtime.NumGoroutine
//	go.heap_inuse_bytes  — MemStats.HeapInuse
//	go.heap_idle_bytes   — MemStats.HeapIdle
//	go.gc_pause_p99_us   — p99 over the last 256 GC pauses
//
// plus the histogram go.gc_pause_us fed one sample per completed GC cycle.
func StartHealth(reg *Registry, interval time.Duration) *HealthCollector {
	if reg == nil {
		return nil
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	h := &HealthCollector{
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	h.sample() // one synchronous sample so gauges exist immediately
	go h.run()
	return h
}

func (h *HealthCollector) run() {
	defer close(h.done)
	t := time.NewTicker(h.interval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			h.sample()
		}
	}
}

func (h *HealthCollector) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h.reg.SetGauge("go.goroutines", float64(runtime.NumGoroutine()))
	h.reg.SetGauge("go.heap_inuse_bytes", float64(ms.HeapInuse))
	h.reg.SetGauge("go.heap_idle_bytes", float64(ms.HeapIdle))

	// New GC cycles since the last sample feed the pause histogram and the
	// retained window. PauseNs is a 256-entry ring indexed by cycle number.
	for gc := h.lastNumGC; gc < ms.NumGC; gc++ {
		if ms.NumGC-gc > uint32(len(ms.PauseNs)) {
			continue // cycle fell off the runtime's ring before we sampled
		}
		us := float64(ms.PauseNs[gc%uint32(len(ms.PauseNs))]) / 1e3
		h.reg.Observe("go.gc_pause_us", us)
		h.pauses = append(h.pauses, us)
	}
	h.lastNumGC = ms.NumGC
	if len(h.pauses) > healthPauseWindow {
		h.pauses = h.pauses[len(h.pauses)-healthPauseWindow:]
	}
	if len(h.pauses) > 0 {
		h.reg.SetGauge("go.gc_pause_p99_us", quantile(h.pauses, 0.99))
	}
}

// quantile returns the q-quantile of values (copied, nearest-rank).
func quantile(values []float64, q float64) float64 {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Stop halts sampling and waits for the goroutine to exit. Safe to call
// multiple times and on a nil collector.
func (h *HealthCollector) Stop() {
	if h == nil {
		return
	}
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}
