// Build identity: a version constant bumped per release line, VCS metadata
// recovered from the Go build info, a -version string for the binaries, and
// the conventional Prometheus triq_build_info info-metric (value 1, identity
// in labels — the one place the label-less registry is bypassed).
package obs

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Version is the release line of this build.
const Version = "0.6.0"

// BuildInfo returns (version, commit, goVersion). The commit comes from the
// embedded VCS stamp when the binary was built from a checkout ("unknown"
// otherwise), suffixed with "+dirty" for modified trees.
func BuildInfo() (version, commit, goVersion string) {
	version, commit, goVersion = Version, "unknown", runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			if len(s.Value) >= 12 {
				commit = s.Value[:12]
			} else if s.Value != "" {
				commit = s.Value
			}
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty && commit != "unknown" {
		commit += "+dirty"
	}
	return
}

// VersionString renders the one-line -version output for a binary.
func VersionString(binary string) string {
	v, c, g := BuildInfo()
	return fmt.Sprintf("%s %s (commit %s, %s)", binary, v, c, g)
}

// WriteBuildInfoProm emits the triq_build_info metric in Prometheus text
// exposition format. The registry itself has no label support, so this is
// appended to /metrics output separately.
func WriteBuildInfoProm(w io.Writer) {
	v, c, g := BuildInfo()
	fmt.Fprintf(w, "# TYPE triq_build_info gauge\n")
	fmt.Fprintf(w, "triq_build_info{version=%q,commit=%q,go_version=%q} 1\n", v, c, g)
}
