// Package repl is WAL-shipping replication for the store: a primary
// streams its commit log (plus snapshots for far-behind subscribers) over
// HTTP, replicas apply the records through the store's epoch machinery and
// serve reads, and a health-based promotion path turns a replica into a
// writable primary from its own recovered WAL.
//
// The wire format is exactly the store's WAL framing (store.Record /
// store.EncodeRecord / store.ReadRecord): length-prefixed CRC32-C records,
// extended on the wire with OpSnapshot (full-state transfer) and
// OpHeartbeat (liveness + lag accounting while the write path is idle).
// Epoch numbering is the correctness contract: a replica at epoch E holds
// bit-identical triples to the primary at epoch E, so the paper's
// certain-answer semantics guarantees identical query answers at equal
// epochs — which is what the chaos differential suite checks.
//
// Fault points (TRIQ_FAULTS): "repl.send" fires before each frame leaves
// the primary, "repl.recv" before each frame is read on the replica, and
// "repl.apply" before a mutation record is folded into the replica's
// store. The network actions partition / slow / dup (and the crash action
// torn, which cuts the stream mid-record) model the classic asynchronous-
// network failure modes; receiver-side idempotency (ApplyReplicated's
// dup-skip) and epoch-gap detection make all of them safe.
package repl

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/limits"
	"repro/internal/obs"
	"repro/internal/store"
)

// DefaultHeartbeat is the idle-stream heartbeat cadence.
const DefaultHeartbeat = 500 * time.Millisecond

// StreamOptions tunes a stream handler.
type StreamOptions struct {
	// Heartbeat is the cadence of OpHeartbeat frames on an idle stream
	// (default DefaultHeartbeat). Replicas use heartbeats for lag accounting
	// and for the promote-on-loss grace clock.
	Heartbeat time.Duration
	// Faults arms the "repl.send" point (default: the store's plan).
	Faults *limits.Plan
}

// errStreamDrop makes the handler sever the connection (injected partition
// or torn stream).
var errStreamDrop = errors.New("repl: stream dropped")

// StreamHandler serves GET /repl/stream?from=<epoch>: it subscribes to the
// store's commit stream and ships records — prefixed by a snapshot frame
// when the requested epoch predates the retained changelog — until the
// client goes away, the subscriber overflows, or the store closes. The
// response is a flushed-per-frame application/octet-stream of WAL records.
func StreamHandler(st *store.Store, o *obs.Obs, opt StreamOptions) http.Handler {
	if opt.Heartbeat <= 0 {
		opt.Heartbeat = DefaultHeartbeat
	}
	if opt.Faults == nil {
		opt.Faults = st.Faults()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "stream is GET-only", http.StatusMethodNotAllowed)
			return
		}
		var from uint64
		if q := r.URL.Query().Get("from"); q != "" {
			v, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "bad from epoch", http.StatusBadRequest)
				return
			}
			from = v
		}
		sub, snap, err := st.Subscribe(from)
		if err != nil {
			switch {
			case errors.Is(err, store.ErrFutureEpoch):
				// The subscriber is ahead of us — a promoted ex-replica being
				// asked to feed a stale primary, or a split brain. Refuse.
				http.Error(w, err.Error(), http.StatusConflict)
			default:
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
			}
			return
		}
		defer sub.Close()

		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Triq-Epoch", strconv.FormatUint(st.Current().Seq, 10))
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		o.Count("repl.streams_opened", 1)

		send := func(rec store.Record) error {
			frame := store.EncodeRecord(rec)
			writes := 1
			if err := limits.Hit(opt.Faults, "repl.send"); err != nil {
				var ne *limits.NetError
				var ce *limits.CrashError
				switch {
				case errors.As(err, &ne) && ne.Kind == limits.NetDup:
					writes = 2 // duplicate the frame on the wire
				case errors.As(err, &ce) && ce.Mode == limits.CrashTorn:
					// Torn stream: half a frame, then sever. The receiver's
					// framing layer must reject the torn tail.
					if _, werr := w.Write(frame[:len(frame)/2]); werr == nil && flusher != nil {
						flusher.Flush()
					}
					return errStreamDrop
				default:
					return errStreamDrop // partition (or any other injected fault)
				}
			}
			for i := 0; i < writes; i++ {
				if _, err := w.Write(frame); err != nil {
					return err
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
			o.Count("repl.records_sent", 1)
			return nil
		}

		if snap != nil {
			o.Count("repl.snapshots_sent", 1)
			if err := send(store.SnapshotRecord(*snap)); err != nil {
				return
			}
		}
		// An immediate heartbeat seeds the replica's wall-clock lag account
		// without waiting a full heartbeat interval.
		if err := send(store.Record{
			Op: store.OpHeartbeat, Epoch: st.Current().Seq,
			Text: []byte(strconv.FormatInt(time.Now().UnixNano(), 10)),
		}); err != nil {
			return
		}

		hb := time.NewTicker(opt.Heartbeat)
		defer hb.Stop()
		for {
			select {
			case rec, ok := <-sub.Records():
				if !ok {
					// Overflow or store close: the replica reconnects and
					// resubscribes from wherever it got to.
					return
				}
				if rec.Trace != "" {
					// Trace-context sidecar: announce the originating
					// traceparent so the replica's apply span joins the
					// client's distributed trace.
					if err := send(store.Record{Op: store.OpTrace, Epoch: rec.Epoch, Text: []byte(rec.Trace)}); err != nil {
						return
					}
				}
				shipStart := time.Now()
				if err := send(rec); err != nil {
					return
				}
				o.Observe("repl.ship_us", float64(time.Since(shipStart).Microseconds()))
				st.Timeline().Stamp(rec.Epoch, store.StageShip)
			case <-hb.C:
				// The heartbeat carries the primary's wall clock so replicas
				// can report lag in seconds, not just epochs.
				now := strconv.FormatInt(time.Now().UnixNano(), 10)
				if err := send(store.Record{Op: store.OpHeartbeat, Epoch: st.Current().Seq, Text: []byte(now)}); err != nil {
					return
				}
			case <-r.Context().Done():
				return
			}
		}
	})
}
