// The replication chaos differential suite: random mutation schedules are
// driven into a durable primary streaming to a durable replica while
// injected network faults (partitions, torn streams, duplicated records,
// slow links — armed through the TRIQ_FAULTS syntax) disturb the link; the
// primary is killed mid-schedule (injected crash, as SIGKILL) and reopened
// at the same address; finally the primary dies for good and the replica
// promotes. After every phase the suite checks the paper's certain-answer
// contract: no acknowledged write is lost, the replica at epoch E is
// bit-identical to the primary at epoch E, and the recursive-query answers
// over the replicated state equal a fresh chase over exactly the surviving
// triples.
package repl_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/limits"
	"repro/internal/rdf"
	"repro/internal/repl"
	"repro/internal/store"
)

// chaosQuery is the recursive reachability query the oracle evaluates.
const chaosQuery = `
	triple(?X, partOf, ?Y) -> reach(?X, ?Y).
	triple(?X, partOf, ?Z), reach(?Z, ?Y) -> reach(?X, ?Y).
	reach(?X, ?Y) -> query(?X, ?Y).
`

// answers runs the recursive query over g and returns sorted rows.
func answers(t *testing.T, g *rdf.Graph) []string {
	t.Helper()
	q, err := repro.ParseQuery(chaosQuery, "query")
	if err != nil {
		t.Fatalf("parse query: %v", err)
	}
	res, err := repro.Ask(g, q, repro.TriQLite10, repro.Options{})
	if err != nil {
		t.Fatalf("ask: %v", err)
	}
	rows := res.Rows()
	sortStrings(rows)
	return rows
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// chaosMutation is one schedule step.
type chaosMutation struct {
	insert bool
	batch  []rdf.Triple
}

// chaosSchedule builds n mutations over a small term universe, tracking a
// private model copy so deletes target triples that actually exist.
func chaosSchedule(rng *rand.Rand, base *rdf.Graph, n int) []chaosMutation {
	model := base.Clone()
	term := func() string { return fmt.Sprintf("s%d", rng.Intn(8)) }
	var out []chaosMutation
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.7 || model.Len() == 0 {
			k := 1 + rng.Intn(3)
			batch := make([]rdf.Triple, 0, k)
			for j := 0; j < k; j++ {
				batch = append(batch, rdf.T(term(), "partOf", term()))
			}
			model.Add(batch...)
			out = append(out, chaosMutation{insert: true, batch: batch})
		} else {
			all := model.SortedTriples()
			batch := []rdf.Triple{all[rng.Intn(len(all))]}
			model.Remove(batch...)
			out = append(out, chaosMutation{insert: false, batch: batch})
		}
	}
	return out
}

// frontDoor is a stable HTTP address whose backing handler can be swapped:
// the "primary" process behind it can die (aborted connections, refused
// requests) and come back after recovery, like a restarted node behind a
// fixed address.
type frontDoor struct {
	h   atomic.Value // http.Handler
	srv *httptest.Server
}

func newFrontDoor(t *testing.T) *frontDoor {
	t.Helper()
	fd := &frontDoor{}
	fd.down()
	fd.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fd.h.Load().(http.Handler).ServeHTTP(w, r)
	}))
	return fd
}

func (fd *frontDoor) set(h http.Handler) { fd.h.Store(h) }

// down makes the address behave like a dead process: every request (and
// every open stream) is severed at the TCP level.
func (fd *frontDoor) down() {
	fd.set(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	if fd.srv != nil {
		fd.srv.CloseClientConnections()
	}
}

// applyChaos drives ops into s, returning the acked model and, when an
// injected crash cut a mutation short, the in-flight batch (which recovery
// may surface whole — the allowed unacknowledged-whole outcome).
func applyChaos(t *testing.T, s *store.Store, base *rdf.Graph, ops []chaosMutation) (acked *rdf.Graph, inflight *chaosMutation, crashed bool) {
	t.Helper()
	acked = base.Clone()
	for i, op := range ops {
		var err error
		if op.insert {
			_, _, err = s.Insert(op.batch)
		} else {
			_, _, err = s.Delete(op.batch)
		}
		if errors.Is(err, limits.ErrCrash) {
			return acked, &ops[i], true
		}
		if err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
		if op.insert {
			acked.Add(op.batch...)
		} else {
			acked.Remove(op.batch...)
		}
	}
	return acked, nil, false
}

func TestChaosDifferential(t *testing.T) {
	plans := []struct {
		name string
		send string // primary-side repl.send plan (TRIQ_FAULTS syntax)
		recv string // replica-side repl.recv / repl.apply plan
	}{
		{"clean-link", "", ""},
		{"partition-dup", "repl.send@3%7=partition, repl.send%5=dup", "repl.recv%9=dup"},
		{"torn-slow", "repl.send@2%9=torn", "repl.apply%6=slow, repl.recv@5%11=partition"},
	}
	for _, plan := range plans {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", plan.name, seed), func(t *testing.T) {
				t.Parallel()
				runChaos(t, plan.send, plan.recv, seed)
			})
		}
	}
}

func runChaos(t *testing.T, sendSpec, recvSpec string, seed int64) {
	sendPlan, err := limits.ParsePlan(sendSpec)
	if err != nil {
		t.Fatal(err)
	}
	recvPlan, err := limits.ParsePlan(recvSpec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	base := rdf.NewGraph()

	// The primary: durable, SyncAlways (acked ⇒ on disk), with a crash armed
	// partway into the schedule — the SIGKILL.
	primaryDir := t.TempDir()
	killAfter := 5 + rng.Intn(4)
	crashPlan := limits.NewPlan(limits.Fault{Point: "wal.append", After: killAfter, Action: limits.ActCrash})
	primary, _, err := store.Open(store.Config{Dir: primaryDir, Faults: crashPlan})
	if err != nil {
		t.Fatal(err)
	}
	fd := newFrontDoor(t)
	t.Cleanup(fd.srv.Close)
	stream := func(st *store.Store) http.Handler {
		return repl.StreamHandler(st, nil, repl.StreamOptions{Heartbeat: testHeartbeat, Faults: sendPlan})
	}
	fd.set(stream(primary))

	// The replica: durable too — promotion must serve from its recovered WAL.
	replica := newStore(t, store.Config{Dir: t.TempDir()})
	rep := startReplica(t, repl.Config{Primary: fd.srv.URL, Store: replica, Faults: recvPlan})

	// Phase 1: mutate until the injected SIGKILL fires.
	acked, inflight, crashed := applyChaos(t, primary, base, chaosSchedule(rng, base, 20))
	if !crashed {
		t.Fatalf("crash after %d appends never fired", killAfter)
	}
	fd.down() // the dead process takes its connections with it

	// Recovery: reopen the directory, like a restarted process, and check
	// the acked-prefix-or-prefix-plus-whole-batch contract.
	primary.Close()
	primary2, rec, err := store.Open(store.Config{Dir: primaryDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary2.Close() })
	recovered := primary2.Current().Graph
	withBatch := acked.Clone()
	if inflight.insert {
		withBatch.Add(inflight.batch...)
	} else {
		withBatch.Remove(inflight.batch...)
	}
	if !recovered.Equal(acked) && !recovered.Equal(withBatch) {
		t.Fatalf("recovered graph (%d triples, epoch %d) is neither the acked prefix (%d) nor prefix+batch (%d)",
			recovered.Len(), rec.Epoch, acked.Len(), withBatch.Len())
	}
	// Phase 2: the primary is back at the same address; more mutations from
	// the surviving state.
	fd.set(stream(primary2))
	acked2, _, crashed2 := applyChaos(t, primary2, recovered, chaosSchedule(rng, recovered, 10))
	if crashed2 {
		t.Fatal("no crash armed in phase 2")
	}

	// The replica must converge through the restart: replica ≡ primary at
	// the equal (final) epoch, answers ≡ fresh chase over the acked triples.
	waitConverged(t, primary2, replica)
	if !replica.Current().Graph.Equal(acked2) {
		t.Fatalf("replica graph (%d triples) != acked state (%d triples)",
			replica.Current().Graph.Len(), acked2.Len())
	}
	if got, want := answers(t, replica.Current().Graph), answers(t, acked2); !equalRows(got, want) {
		t.Fatalf("replica answers %v != fresh chase %v", got, want)
	}

	// Phase 3: the primary dies for good; the caught-up replica promotes and
	// must hold every acknowledged write, then keep taking new ones.
	fd.down()
	rep.Promote("chaos failover")
	promotedEpoch := replica.Current()
	if promotedEpoch.Seq != primary2.Current().Seq || !promotedEpoch.Graph.Equal(acked2) {
		t.Fatalf("promoted node at epoch %d lost acked writes", promotedEpoch.Seq)
	}
	if _, _, err := replica.Insert([]rdf.Triple{rdf.T("post", "partOf", "failover")}); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	final := replica.Current().Graph
	if got, want := answers(t, final), answers(t, final.Clone()); !equalRows(got, want) {
		t.Fatalf("post-failover answers are not reproducible: %v vs %v", got, want)
	}
}

// The replica's own durability: kill the replica (injected crash on its
// store) mid-replication, reopen its directory, reconnect, and converge.
// An acked-at-the-primary write must never be double-applied or lost by
// the replica's crash-recovery cycle.
func TestChaosReplicaCrashRecovers(t *testing.T) {
	primary := newStore(t, store.Config{Dir: t.TempDir()})
	srv := startServer(t, repl.StreamHandler(primary, nil, repl.StreamOptions{Heartbeat: testHeartbeat}))

	replicaDir := t.TempDir()
	crashPlan := limits.NewPlan(limits.Fault{Point: "wal.append", After: 5, Action: limits.ActCrash, Mode: limits.CrashTorn})
	replica1, _, err := store.Open(store.Config{Dir: replicaDir, Faults: crashPlan})
	if err != nil {
		t.Fatal(err)
	}
	rep1 := repl.New(repl.Config{Primary: srv.URL, Store: replica1, Backoff: 5 * time.Millisecond})
	rep1.Start(context.Background())

	base := rdf.NewGraph()
	rng := rand.New(rand.NewSource(7))
	acked, _, crashed := applyChaos(t, primary, base, chaosSchedule(rng, base, 12))
	if crashed {
		t.Fatal("primary must not crash in this scenario")
	}

	// Wait for the replica's crash latch to trip, then "restart" it.
	deadline := time.After(5 * time.Second)
	for !replica1.Crashed() {
		select {
		case <-deadline:
			t.Fatal("replica crash point never fired")
		case <-time.After(time.Millisecond):
		}
	}
	rep1.Stop()
	replica1.Close()

	replica2, _, err := store.Open(store.Config{Dir: replicaDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { replica2.Close() })
	rep2 := repl.New(repl.Config{Primary: srv.URL, Store: replica2, Backoff: 5 * time.Millisecond})
	rep2.Start(context.Background())
	t.Cleanup(rep2.Stop)

	waitConverged(t, primary, replica2)
	if !replica2.Current().Graph.Equal(acked) {
		t.Fatalf("recovered replica (%d triples) != acked state (%d triples)",
			replica2.Current().Graph.Len(), acked.Len())
	}
	if got, want := answers(t, replica2.Current().Graph), answers(t, acked); !equalRows(got, want) {
		t.Fatalf("recovered replica answers %v != fresh chase %v", got, want)
	}
}
