package repl

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/limits"
	"repro/internal/obs"
	"repro/internal/store"
)

// Replica states, as reported by State.State and /readyz.
const (
	StateConnecting = "connecting"  // no live stream to the primary
	StateCatchingUp = "catching-up" // installing a snapshot transfer
	StateReplica    = "replica"     // streaming, serving reads
	StatePromoted   = "promoted"    // now a writable primary
)

// DefaultPromoteGrace is how long a promote-on-loss replica tolerates
// silence from the primary before promoting itself.
const DefaultPromoteGrace = 5 * time.Second

// Config assembles a Replica.
type Config struct {
	// Primary is the primary's base URL, e.g. "http://10.0.0.1:8080".
	Primary string
	// Store is the local store records are applied into.
	Store *store.Store
	// Obs receives the repl.* gauges and counters (nil is fine).
	Obs *obs.Obs
	// Client performs the stream requests (default: a client with no
	// timeout — the stream is long-lived).
	Client *http.Client
	// Faults arms "repl.recv" / "repl.apply" (default: the store's plan).
	Faults *limits.Plan
	// PromoteOnLoss promotes the replica automatically once the primary has
	// been silent for PromoteGrace.
	PromoteOnLoss bool
	// PromoteGrace is the silence tolerance (default DefaultPromoteGrace).
	PromoteGrace time.Duration
	// Backoff is the reconnect backoff floor (default 50ms, doubling to 1s).
	Backoff time.Duration
	// Traces, when set, receives a replica-apply trace for every shipped
	// record that carried a sampled trace-context sidecar (OpTrace frame):
	// the apply span joins the client's trace id with the primary's span as
	// remote parent, so /debug/trace on the replica shows the distributed
	// tail of the mutation.
	Traces *obs.TraceStore
	// TraceSeed seeds the replica's span-id generator (0 = clock-derived).
	TraceSeed int64
}

// State is a point-in-time snapshot of the replica for /readyz and metrics.
type State struct {
	// State is one of the State* constants.
	State string `json:"state"`
	// Primary is the configured primary address.
	Primary string `json:"primary"`
	// Epoch is the local store epoch.
	Epoch uint64 `json:"epoch"`
	// PrimaryEpoch is the primary's last advertised epoch.
	PrimaryEpoch uint64 `json:"primary_epoch"`
	// LagEpochs is max(PrimaryEpoch-Epoch, 0).
	LagEpochs uint64 `json:"lag_epochs"`
	// LagSeconds is the replica's wall-clock staleness: local now minus the
	// primary clock carried by the last heartbeat. It keeps growing while
	// the primary is unreachable — exactly the signal an operator (and the
	// replica-lag SLO) needs during a partition. Zero before the first
	// wall-clock heartbeat.
	LagSeconds float64 `json:"lag_seconds"`
	// Connected reports a live stream.
	Connected bool `json:"connected"`
}

// Replica tails a primary's record stream into a local store, tracks lag,
// and handles promotion. Safe for concurrent use.
type Replica struct {
	cfg Config

	mu           sync.Mutex
	state        string
	primaryEpoch uint64
	connected    bool
	lastContact  time.Time
	promoted     bool
	promoteOnce  sync.Once
	primaryClock time.Time // primary wall clock from the last heartbeat

	// pendingTrace is the traceparent from the last OpTrace sidecar, keyed
	// by the epoch it annotates; it is consumed by the next mutation frame.
	pendingTrace      string
	pendingTraceEpoch uint64

	ids *obs.IDSource

	cancel context.CancelFunc
	done   chan struct{}
}

// New builds a replica; Start begins streaming.
func New(cfg Config) *Replica {
	if cfg.Client == nil {
		cfg.Client = &http.Client{} // no timeout: the stream is long-lived
	}
	if cfg.Faults == nil {
		cfg.Faults = cfg.Store.Faults()
	}
	if cfg.PromoteGrace <= 0 {
		cfg.PromoteGrace = DefaultPromoteGrace
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	return &Replica{cfg: cfg, state: StateConnecting, done: make(chan struct{}), ids: obs.NewIDSource(cfg.TraceSeed)}
}

// Start launches the streaming loop. It returns immediately.
func (r *Replica) Start(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	r.mu.Lock()
	r.cancel = cancel
	r.lastContact = time.Now() // the grace clock starts now, not at zero
	r.mu.Unlock()
	go r.loop(ctx)
}

// Stop ends streaming and waits for the loop to exit.
func (r *Replica) Stop() {
	r.mu.Lock()
	cancel := r.cancel
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	<-r.done
}

// Promote turns the replica into a writable primary: the stream stops and
// the serve layer (watching IsPromoted) opens the write path over the
// replicated, WAL-recovered state. Idempotent.
func (r *Replica) Promote(reason string) {
	r.promoteOnce.Do(func() {
		r.mu.Lock()
		r.promoted = true
		r.state = StatePromoted
		cancel := r.cancel
		r.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		r.cfg.Obs.Count("repl.promotions", 1)
		r.cfg.Obs.Event("repl.promoted", obs.F("reason", reason), obs.F("epoch", r.cfg.Store.Current().Seq))
	})
}

// IsPromoted reports whether Promote has run.
func (r *Replica) IsPromoted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoted
}

// State snapshots the replica for /readyz and the metrics registry.
func (r *Replica) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	epoch := r.cfg.Store.Current().Seq
	st := State{
		State:        r.state,
		Primary:      r.cfg.Primary,
		Epoch:        epoch,
		PrimaryEpoch: r.primaryEpoch,
		Connected:    r.connected,
	}
	if r.primaryEpoch > epoch {
		st.LagEpochs = r.primaryEpoch - epoch
	}
	if !r.primaryClock.IsZero() {
		if lag := time.Since(r.primaryClock).Seconds(); lag > 0 {
			st.LagSeconds = lag
		}
	}
	return st
}

func (r *Replica) setState(s string) {
	r.mu.Lock()
	if !r.promoted {
		r.state = s
	}
	r.mu.Unlock()
}

// touch records contact with the primary at epoch pe and refreshes the lag
// gauge.
func (r *Replica) touch(pe uint64) {
	r.mu.Lock()
	r.lastContact = time.Now()
	if pe > r.primaryEpoch {
		r.primaryEpoch = pe
	}
	pe = r.primaryEpoch
	r.mu.Unlock()
	local := r.cfg.Store.Current().Seq
	var lag uint64
	if pe > local {
		lag = pe - local
	}
	r.cfg.Obs.Gauge("repl.lag_epochs", float64(lag))
	r.cfg.Obs.Gauge("repl.primary_epoch", float64(pe))
}

// touchClock records the primary wall clock carried by a heartbeat and
// refreshes the seconds-lag gauge.
func (r *Replica) touchClock(primaryNow time.Time) {
	r.mu.Lock()
	if primaryNow.After(r.primaryClock) {
		r.primaryClock = primaryNow
	}
	pc := r.primaryClock
	r.mu.Unlock()
	lag := time.Since(pc).Seconds()
	if lag < 0 {
		lag = 0
	}
	r.cfg.Obs.Gauge("repl.lag_seconds", lag)
}

// loop reconnects with backoff until the context ends or the replica is
// promoted; with PromoteOnLoss it promotes itself after PromoteGrace of
// silence.
func (r *Replica) loop(ctx context.Context) {
	defer close(r.done)
	backoff := r.cfg.Backoff
	for {
		if ctx.Err() != nil || r.IsPromoted() {
			return
		}
		err := r.stream(ctx)
		r.mu.Lock()
		r.connected = false
		silent := time.Since(r.lastContact)
		r.mu.Unlock()
		r.cfg.Obs.Gauge("repl.connected", 0)
		if ctx.Err() != nil || r.IsPromoted() {
			return
		}
		r.setState(StateConnecting)
		r.cfg.Obs.Count("repl.reconnects", 1)
		if err != nil {
			r.cfg.Obs.Event("repl.disconnect", obs.F("error", err.Error()))
		}
		if r.cfg.PromoteOnLoss && silent >= r.cfg.PromoteGrace {
			r.Promote(fmt.Sprintf("primary silent for %s", obs.FormatDuration(silent)))
			return
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// stream runs one connection lifetime: request, read frames, dispatch.
func (r *Replica) stream(ctx context.Context) error {
	from := r.cfg.Store.Current().Seq
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/repl/stream?from=%d", r.cfg.Primary, from), nil)
	if err != nil {
		return err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: primary returned %s", resp.Status)
	}
	r.mu.Lock()
	r.connected = true
	r.lastContact = time.Now()
	r.mu.Unlock()
	r.setState(StateReplica)
	r.cfg.Obs.Gauge("repl.connected", 1)

	br := bufio.NewReader(resp.Body)
	for {
		dup := false
		if err := limits.Hit(r.cfg.Faults, "repl.recv"); err != nil {
			var ne *limits.NetError
			if errors.As(err, &ne) && ne.Kind == limits.NetDup {
				dup = true // deliver the next frame twice
			} else {
				return err // partition / torn / anything else: drop the link
			}
		}
		rec, err := store.ReadRecord(br)
		if err != nil {
			return err // EOF, torn tail, or checksum failure: reconnect
		}
		if err := r.handle(rec); err != nil {
			return err
		}
		if dup {
			// Receiver-side duplicate delivery; ApplyReplicated's dup-skip
			// must make this a no-op.
			if err := r.handle(rec); err != nil {
				return err
			}
		}
	}
}

// applyTraceStart opens the replica-apply span when the record was preceded
// by a trace sidecar with a sampled traceparent: the span joins the client's
// trace id with the primary's span as remote parent, so the distributed
// trace ends on the replica.
func (r *Replica) applyTraceStart(rec store.Record) (*obs.Trace, *obs.Span) {
	r.mu.Lock()
	tp := ""
	if r.pendingTrace != "" && r.pendingTraceEpoch == rec.Epoch {
		tp = r.pendingTrace
		r.pendingTrace, r.pendingTraceEpoch = "", 0
	}
	r.mu.Unlock()
	if tp == "" || r.cfg.Traces == nil {
		return nil, nil
	}
	tid, sid, flags, err := obs.ParseTraceparent(tp)
	if err != nil || flags&obs.FlagSampled == 0 {
		return nil, nil
	}
	t := obs.NewTrace(tid, r.ids, true)
	t.SetRemoteParent(sid)
	op := "insert"
	if rec.Op == store.OpDelete {
		op = "delete"
	}
	ctx := obs.ContextWithTrace(context.Background(), t)
	_, sp := obs.StartSpan(ctx, r.cfg.Obs, "repl.apply",
		obs.F("repl.epoch", int64(rec.Epoch)), obs.F("repl.op", op), obs.F("repl.primary", r.cfg.Primary))
	return t, sp
}

// applyTraceEnd closes and stores the replica-apply trace.
func (r *Replica) applyTraceEnd(t *obs.Trace, sp *obs.Span, applied bool, err error) {
	if t == nil {
		return
	}
	attrs := []obs.KV{obs.F("repl.applied", applied)}
	if err != nil {
		attrs = append(attrs, obs.F("error", err.Error()))
	}
	sp.End(attrs...)
	t.Finish()
	r.cfg.Traces.Add(t)
}

// handle dispatches one frame.
func (r *Replica) handle(rec store.Record) error {
	switch rec.Op {
	case store.OpHeartbeat:
		if len(rec.Text) > 0 {
			if ns, err := strconv.ParseInt(string(rec.Text), 10, 64); err == nil {
				r.touchClock(time.Unix(0, ns))
			}
		}
		r.touch(rec.Epoch)
		return nil
	case store.OpTrace:
		r.mu.Lock()
		r.pendingTrace = string(rec.Text)
		r.pendingTraceEpoch = rec.Epoch
		r.mu.Unlock()
		return nil
	case store.OpSnapshot:
		r.setState(StateCatchingUp)
		epoch, g, err := store.DecodeSnapshot(rec)
		if err != nil {
			return err
		}
		if _, err := r.cfg.Store.InstallSnapshot(epoch, g); err != nil {
			return err
		}
		r.setState(StateReplica)
		r.cfg.Obs.Count("repl.snapshots_installed", 1)
		r.touch(epoch)
		return nil
	case store.OpInsert, store.OpDelete:
		if err := limits.Hit(r.cfg.Faults, "repl.apply"); err != nil {
			var ne *limits.NetError
			if errors.As(err, &ne) && ne.Kind == limits.NetDup {
				// Apply-side duplication: fold the record in twice; the
				// second pass must dup-skip.
				defer func() { _, _, _ = r.cfg.Store.ApplyReplicated(rec) }()
			} else {
				return err
			}
		}
		tr, sp := r.applyTraceStart(rec)
		start := time.Now()
		_, applied, err := r.cfg.Store.ApplyReplicated(rec)
		r.applyTraceEnd(tr, sp, applied, err)
		if err != nil {
			// An epoch gap means the stream skipped records (e.g. after an
			// injected duplicate-connection shuffle): reconnect and resync
			// from the local epoch.
			return err
		}
		r.cfg.Obs.Observe("repl.apply_us", float64(time.Since(start).Microseconds()))
		if applied {
			r.cfg.Obs.Count("repl.records_applied", 1)
		} else {
			r.cfg.Obs.Count("repl.dup_skipped", 1)
		}
		r.touch(rec.Epoch)
		return nil
	default:
		return fmt.Errorf("repl: unexpected opcode %d", rec.Op)
	}
}
