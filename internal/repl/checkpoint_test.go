// Satellite coverage for the recovery matrix: a crash injected *during* a
// checkpoint ("wal.checkpoint" fires between the snapshot rename and the
// WAL reset, in torn and flip modes), followed by reopen-then-replicate.
// The snapshot-tmp/rename discipline must never leave a replica able to
// stream a state the primary cannot itself recover to: everything a
// post-recovery replica receives is exactly the reopened primary's state.
package repl_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/limits"
	"repro/internal/rdf"
	"repro/internal/repl"
	"repro/internal/store"
)

func TestCheckpointCrashThenReplicate(t *testing.T) {
	for _, mode := range []limits.CrashMode{limits.CrashTorn, limits.CrashFlip, limits.CrashClean} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			plan := limits.NewPlan(limits.Fault{Point: "wal.checkpoint", Action: limits.ActCrash, Mode: mode})
			primary, _, err := store.Open(store.Config{Dir: dir, CheckpointEvery: 3, Faults: plan})
			if err != nil {
				t.Fatal(err)
			}

			// Mutate until the checkpoint-triggering commit dies. The commit
			// itself swapped in (and its snapshot renamed durably) before the
			// crash point fired, so the state at the crash epoch is exactly
			// what recovery must reproduce.
			model := rdf.NewGraph()
			var crashEpoch uint64
			for i := 0; ; i++ {
				if i > 10 {
					t.Fatal("checkpoint crash never fired")
				}
				tr := rdf.T(fmt.Sprintf("s%d", i), "partOf", fmt.Sprintf("s%d", i+1))
				e, _, err := primary.Insert([]rdf.Triple{tr})
				if errors.Is(err, limits.ErrCrash) {
					model.Add(tr) // committed, then the checkpoint died
					crashEpoch = e.Seq
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				model.Add(tr)
				crashEpoch = e.Seq
			}
			primary.Close()

			// A torn checkpoint may also leave a half-written snapshot tmp
			// behind; recovery must ignore it (only the renamed snapshot.nt
			// counts).
			if err := os.WriteFile(filepath.Join(dir, "snapshot.nt.tmp"), []byte("# epoch 999\ngarbage"), 0o644); err != nil {
				t.Fatal(err)
			}

			reopened, rec, err := store.Open(store.Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { reopened.Close() })
			if rec.Epoch != crashEpoch || !reopened.Current().Graph.Equal(model) {
				t.Fatalf("recovered epoch %d (%d triples), want epoch %d (%d triples)",
					rec.Epoch, rec.Triples, crashEpoch, model.Len())
			}

			// Reopen-then-replicate: a fresh replica streaming from zero must
			// land bit-identically on the recovered state — the stream can
			// never hand out a state the primary cannot recover to.
			srv := startServer(t, repl.StreamHandler(reopened, nil, repl.StreamOptions{Heartbeat: testHeartbeat}))
			replica := newStore(t, store.Config{Dir: t.TempDir()})
			startReplica(t, repl.Config{Primary: srv.URL, Store: replica})
			waitConverged(t, reopened, replica)
			if !replica.Current().Graph.Equal(model) {
				t.Fatalf("replica state diverges from the recovered primary")
			}
			if got, want := answers(t, replica.Current().Graph), answers(t, model); !equalRows(got, want) {
				t.Fatalf("replica answers %v != fresh chase %v", got, want)
			}

			// And the replicated epochs keep lining up for post-recovery writes.
			e2, _, err := reopened.Insert([]rdf.Triple{rdf.T("post", "partOf", "recovery")})
			if err != nil {
				t.Fatal(err)
			}
			waitConverged(t, reopened, replica)
			if replica.Current().Seq != e2.Seq {
				t.Fatalf("replica epoch %d != primary epoch %d", replica.Current().Seq, e2.Seq)
			}
		})
	}
}
