// Unit tests for the replication layer: stream + apply end-to-end over
// real HTTP, snapshot fallback, promotion, and each injected network fault
// in isolation. The randomized differential suite is in chaos_test.go.
package repl_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/limits"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/repl"
	"repro/internal/store"
)

const testHeartbeat = 10 * time.Millisecond

func newStore(t *testing.T, cfg store.Config) *store.Store {
	t.Helper()
	s, _, err := store.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func insert(t *testing.T, s *store.Store, triples ...rdf.Triple) store.Epoch {
	t.Helper()
	e, _, err := s.Insert(triples)
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	return e
}

// startServer serves h and closes it after any replicas registered later
// have stopped (t.Cleanup runs LIFO; httptest's Close waits for the open
// stream request, so the replica must disconnect first).
func startServer(t *testing.T, h http.Handler) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// startReplica wires a replica to a primary URL and cleans it up.
func startReplica(t *testing.T, cfg repl.Config) *repl.Replica {
	t.Helper()
	if cfg.Backoff == 0 {
		cfg.Backoff = 5 * time.Millisecond
	}
	r := repl.New(cfg)
	r.Start(context.Background())
	t.Cleanup(r.Stop)
	return r
}

// waitConverged blocks until the replica store reaches the primary's
// current epoch and the graphs match.
func waitConverged(t *testing.T, primary, replica *store.Store) {
	t.Helper()
	want := primary.Current()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := replica.WaitEpoch(ctx, want.Seq); err != nil {
		t.Fatalf("replica stuck at epoch %d waiting for %d: %v",
			replica.Current().Seq, want.Seq, err)
	}
	got := replica.Current()
	if got.Seq == want.Seq && !got.Graph.Equal(want.Graph) {
		t.Fatalf("epoch %d: replica graph (%d triples) != primary graph (%d triples)",
			got.Seq, got.Graph.Len(), want.Graph.Len())
	}
}

func TestStreamAndApply(t *testing.T) {
	primary := newStore(t, store.Config{})
	insert(t, primary, rdf.T("a", "p", "b"))
	srv := startServer(t, repl.StreamHandler(primary, nil, repl.StreamOptions{Heartbeat: testHeartbeat}))

	replica := newStore(t, store.Config{})
	o := obs.New()
	rep := startReplica(t, repl.Config{Primary: srv.URL, Store: replica, Obs: o})

	// Pre-existing and live writes both arrive.
	insert(t, primary, rdf.T("b", "p", "c"))
	if _, _, err := primary.Delete([]rdf.Triple{rdf.T("a", "p", "b")}); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, primary, replica)

	st := rep.State()
	if st.State != repl.StateReplica || !st.Connected {
		t.Fatalf("state = %+v, want connected replica", st)
	}
	if st.Primary != srv.URL {
		t.Fatalf("state.Primary = %q", st.Primary)
	}

	// Heartbeats keep the lag accounting fresh while idle.
	deadline := time.After(2 * time.Second)
	for rep.State().PrimaryEpoch != primary.Current().Seq {
		select {
		case <-deadline:
			t.Fatalf("primary epoch never advertised: %+v", rep.State())
		case <-time.After(testHeartbeat):
		}
	}
	if lag := rep.State().LagEpochs; lag != 0 {
		t.Fatalf("lag = %d after convergence", lag)
	}
}

func TestSnapshotFallback(t *testing.T) {
	// Retention of 2 with 6 committed batches forces a full-state transfer
	// for a from-zero subscriber.
	primary := newStore(t, store.Config{ReplLog: 2})
	for i := 0; i < 6; i++ {
		insert(t, primary, rdf.T(fmt.Sprintf("s%d", i), "p", "o"))
	}
	srv := startServer(t, repl.StreamHandler(primary, nil, repl.StreamOptions{Heartbeat: testHeartbeat}))

	replica := newStore(t, store.Config{})
	o := obs.New()
	startReplica(t, repl.Config{Primary: srv.URL, Store: replica, Obs: o})
	waitConverged(t, primary, replica)

	// And the stream continues live after the snapshot handoff.
	insert(t, primary, rdf.T("s9", "p", "o"))
	waitConverged(t, primary, replica)
}

func TestManualPromote(t *testing.T) {
	primary := newStore(t, store.Config{})
	insert(t, primary, rdf.T("a", "p", "b"))
	srv := startServer(t, repl.StreamHandler(primary, nil, repl.StreamOptions{Heartbeat: testHeartbeat}))

	replica := newStore(t, store.Config{})
	rep := startReplica(t, repl.Config{Primary: srv.URL, Store: replica, Obs: obs.New()})
	waitConverged(t, primary, replica)

	rep.Promote("operator")
	if !rep.IsPromoted() || rep.State().State != repl.StatePromoted {
		t.Fatalf("state after promote = %+v", rep.State())
	}
	// The promoted node owns the epoch counter now and accepts writes.
	e := insert(t, replica, rdf.T("post", "promote", "write"))
	if e.Seq != primary.Current().Seq+1 {
		t.Fatalf("promoted epoch = %d, want %d", e.Seq, primary.Current().Seq+1)
	}
	rep.Promote("again") // idempotent
}

func TestPromoteOnLoss(t *testing.T) {
	primary := newStore(t, store.Config{})
	insert(t, primary, rdf.T("a", "p", "b"))
	srv := startServer(t, repl.StreamHandler(primary, nil, repl.StreamOptions{Heartbeat: testHeartbeat}))

	replica := newStore(t, store.Config{})
	rep := startReplica(t, repl.Config{
		Primary: srv.URL, Store: replica, Obs: obs.New(),
		PromoteOnLoss: true, PromoteGrace: 50 * time.Millisecond,
	})
	waitConverged(t, primary, replica)

	// The primary dies (connections sever, nothing listens anymore).
	srv.CloseClientConnections()
	srv.Close()

	deadline := time.After(5 * time.Second)
	for !rep.IsPromoted() {
		select {
		case <-deadline:
			t.Fatalf("replica never promoted itself: %+v", rep.State())
		case <-time.After(5 * time.Millisecond):
		}
	}
	// The promoted node serves the replicated state and accepts writes.
	if !replica.Current().Graph.Has(rdf.T("a", "p", "b")) {
		t.Fatal("promoted node lost replicated state")
	}
	insert(t, replica, rdf.T("new", "p", "write"))
}

// Each injected network fault, in isolation, must not prevent convergence:
// partitions reconnect, torn streams resynchronize on framing, duplicates
// dup-skip. The plans are built with ParsePlan so the test exercises the
// exact TRIQ_FAULTS syntax.
func TestNetworkFaultsConverge(t *testing.T) {
	cases := []struct {
		name    string
		send    string // plan on the primary's repl.send
		receive string // plan on the replica's repl.recv / repl.apply
	}{
		{"partition-send", "repl.send@4%9=partition", ""},
		{"torn-send", "repl.send@3%11=torn", ""},
		{"dup-send", "repl.send%5=dup", ""},
		{"partition-recv", "", "repl.recv@4%9=partition"},
		{"dup-recv", "", "repl.recv%5=dup"},
		{"dup-apply", "", "repl.apply%4=dup"},
		{"slow-apply", "", "repl.apply%6=slow"},
		{"mixed", "repl.send@5%13=partition, repl.send%7=dup", "repl.recv%11=dup, repl.apply@3%17=partition"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sendPlan, err := limits.ParsePlan(tc.send)
			if err != nil {
				t.Fatal(err)
			}
			recvPlan, err := limits.ParsePlan(tc.receive)
			if err != nil {
				t.Fatal(err)
			}

			primary := newStore(t, store.Config{})
			srv := startServer(t, repl.StreamHandler(primary, nil,
				repl.StreamOptions{Heartbeat: testHeartbeat, Faults: sendPlan}))

			replica := newStore(t, store.Config{})
			o := obs.New()
			startReplica(t, repl.Config{Primary: srv.URL, Store: replica, Obs: o, Faults: recvPlan})

			for i := 0; i < 30; i++ {
				insert(t, primary, rdf.T(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i%5)))
			}
			waitConverged(t, primary, replica)
		})
	}
}

// A replica that subscribes ahead of the primary (split brain) is refused.
func TestFutureSubscriberRefused(t *testing.T) {
	primary := newStore(t, store.Config{})
	srv := startServer(t, repl.StreamHandler(primary, nil, repl.StreamOptions{Heartbeat: testHeartbeat}))

	ahead := newStore(t, store.Config{})
	for i := 0; i < 3; i++ {
		insert(t, ahead, rdf.T(fmt.Sprintf("s%d", i), "p", "o"))
	}
	rep := repl.New(repl.Config{Primary: srv.URL, Store: ahead, Obs: obs.New(), Backoff: 5 * time.Millisecond})
	rep.Start(context.Background())
	defer rep.Stop()

	// The replica must not regress: it keeps retrying (or an operator
	// promotes it), but never applies anything backwards.
	time.Sleep(100 * time.Millisecond)
	if got := ahead.Current().Seq; got != 3 {
		t.Fatalf("ahead store regressed to epoch %d", got)
	}
	if st := rep.State(); st.State == repl.StateReplica && st.Connected {
		t.Fatalf("refused subscriber must not report a live replica state: %+v", st)
	}
}
