// Package pep implements the program-expressive-power apparatus of
// Section 7 of the paper: Pep_L[Π] collects the triples (D, Λ, t) such that
// the query (Π ∪ Λ, p) lies in the language L and answers t over D, where Λ
// is a set of plain Datalog output rules. The package provides the witness
// constructions of Theorems 7.1 (Datalog ≺_Pep warded Datalog^∃) and 7.2
// (Datalog^{¬s,⊥} ≺_Pep TriQ-Lite 1.0) as executable artifacts, plus the
// machinery to evaluate Pep-triples.
package pep

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/triq"
)

// Witness bundles one Pep separation: a database D, a fixed program Π in the
// stronger language, and two output-rule sets Λ1, Λ2 such that
// (D, Λ1, ()) ∈ Pep[Π] and (D, Λ2, ()) ∉ Pep[Π], while for every program of
// the weaker (null-free) language the two triples necessarily coexist.
type Witness struct {
	// DB is the database D.
	DB *chase.Instance
	// Pi is the fixed program Π of the stronger language.
	Pi *datalog.Program
	// Lambda1 and Lambda2 are the output-rule sets; Output names their
	// 0-ary output predicate q.
	Lambda1, Lambda2 *datalog.Program
	Output           string
}

// Theorem71 returns the witness of Theorem 7.1:
//
//	D = {p(c)},  Π = {p(X) → ∃Y s(X,Y)},
//	Λ1 = {s(X,Y) → q},  Λ2 = {s(X,Y), p(Y) → q}.
func Theorem71() Witness {
	return Witness{
		DB:      chase.NewInstance(datalog.NewAtom("p", datalog.C("c"))),
		Pi:      datalog.MustParse(`p(?X) -> exists ?Y s(?X, ?Y).`),
		Lambda1: datalog.MustParse(`s(?X, ?Y) -> q().`),
		Lambda2: datalog.MustParse(`s(?X, ?Y), p(?Y) -> q().`),
		Output:  "q",
	}
}

// Theorem72 returns the analogous witness separating Datalog^{¬s,⊥} from
// TriQ-Lite 1.0: the fixed program uses both value invention and stratified
// grounded negation, and is a TriQ-Lite 1.0 program.
func Theorem72() Witness {
	return Witness{
		DB: chase.NewInstance(datalog.NewAtom("p", datalog.C("c"))),
		Pi: datalog.MustParse(`
			p(?X), not excluded(?X) -> p1(?X).
			p1(?X) -> exists ?Y s(?X, ?Y).
		`),
		Lambda1: datalog.MustParse(`s(?X, ?Y) -> q().`),
		Lambda2: datalog.MustParse(`s(?X, ?Y), p(?Y) -> q().`),
		Output:  "q",
	}
}

// Query assembles (Π ∪ Λ, q).
func (w Witness) Query(lambda *datalog.Program) datalog.Query {
	prog := w.Pi.Clone()
	prog.Merge(lambda)
	return datalog.NewQuery(prog, w.Output)
}

// Holds reports whether (D, Λ, ()) belongs to Pep[Π], i.e. whether the empty
// tuple is an answer of (Π ∪ Λ, q) over D.
func (w Witness) Holds(lambda *datalog.Program) (bool, error) {
	q := w.Query(lambda)
	res, err := triq.Eval(w.DB, q, triq.Unrestricted, triq.Options{})
	if err != nil {
		return false, err
	}
	if res.Answers.Inconsistent {
		return false, fmt.Errorf("pep: unexpected ⊤")
	}
	return len(res.Answers.Tuples) > 0, nil
}

// DatalogCoexistence checks the weaker-language side of the separation for
// one candidate program Π': over the witness database, () ∈ (Π' ∪ Λ1, q)(D)
// must imply () ∈ (Π' ∪ Λ2, q)(D). It holds for every constant-free
// Datalog^{¬s} program because without labeled nulls every derivable s-fact
// ranges over dom(D) = {c}, where Λ1 and Λ2 coincide.
func (w Witness) DatalogCoexistence(pi *datalog.Program) (bool, error) {
	if pi.HasExistentials() {
		return false, fmt.Errorf("pep: candidate program must be null-free Datalog")
	}
	mk := func(lambda *datalog.Program) (bool, error) {
		prog := pi.Clone()
		prog.Merge(lambda)
		q := datalog.NewQuery(prog, w.Output)
		res, err := chase.Answer(w.DB, q, chase.Options{})
		if err != nil {
			return false, err
		}
		return !res.Inconsistent && len(res.Tuples) > 0, nil
	}
	q1, err := mk(w.Lambda1)
	if err != nil {
		return false, err
	}
	q2, err := mk(w.Lambda2)
	if err != nil {
		return false, err
	}
	return !q1 || q2, nil
}
