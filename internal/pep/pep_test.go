package pep

import (
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/triq"
)

func TestTheorem71Witness(t *testing.T) {
	w := Theorem71()
	// Π is warded (indeed a single guarded existential rule).
	if err := datalog.CheckWarded(w.Pi); err != nil {
		t.Fatalf("Π should be warded: %v", err)
	}
	// Both assembled queries are warded Datalog^∃ queries.
	for _, lam := range []*datalog.Program{w.Lambda1, w.Lambda2} {
		if err := triq.Validate(w.Query(lam), triq.TriQLite10); err != nil {
			t.Errorf("assembled query should be TriQ-Lite 1.0: %v", err)
		}
	}
	// () ∈ Q1(D): the invented null makes s(c, z) true.
	got1, err := w.Holds(w.Lambda1)
	if err != nil {
		t.Fatal(err)
	}
	if !got1 {
		t.Error("(D, Λ1, ()) should be in Pep[Π]")
	}
	// () ∉ Q2(D): the null is not a p.
	got2, err := w.Holds(w.Lambda2)
	if err != nil {
		t.Fatal(err)
	}
	if got2 {
		t.Error("(D, Λ2, ()) should NOT be in Pep[Π]")
	}
}

func TestTheorem72Witness(t *testing.T) {
	w := Theorem72()
	if err := triq.Validate(w.Query(w.Lambda1), triq.TriQLite10); err != nil {
		t.Fatalf("Π ∪ Λ1 should be TriQ-Lite 1.0: %v", err)
	}
	if !w.Pi.HasNegation() {
		t.Error("the 7.2 witness should exercise negation")
	}
	got1, err := w.Holds(w.Lambda1)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := w.Holds(w.Lambda2)
	if err != nil {
		t.Fatal(err)
	}
	if !got1 || got2 {
		t.Errorf("separation failed: Λ1=%v Λ2=%v, want true/false", got1, got2)
	}
}

// randomDatalog builds a small constant-free stratified Datalog program over
// the witness schema.
func randomDatalog(rng *rand.Rand) *datalog.Program {
	prog := &datalog.Program{}
	x, y := datalog.V("X"), datalog.V("Y")
	bodies := [][]datalog.Atom{
		{datalog.NewAtom("p", x)},
		{datalog.NewAtom("p", x), datalog.NewAtom("p", y)},
		{datalog.NewAtom("s", x, y)},
		{datalog.NewAtom("r", x), datalog.NewAtom("p", y)},
		{datalog.NewAtom("p", x), datalog.NewAtom("r", x)},
	}
	heads := []datalog.Atom{
		datalog.NewAtom("s", x, x),
		datalog.NewAtom("r", x),
		datalog.NewAtom("p", x),
	}
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		body := bodies[rng.Intn(len(bodies))]
		head := heads[rng.Intn(len(heads))]
		// Safety: head vars must occur in the body.
		bv := map[datalog.Term]bool{}
		for _, v := range datalog.VarsOf(body) {
			bv[v] = true
		}
		ok := true
		for _, v := range head.Vars() {
			if !bv[v] {
				ok = false
			}
		}
		if !ok {
			continue
		}
		prog.Add(datalog.Rule{BodyPos: body, Head: []datalog.Atom{head}})
	}
	if len(prog.Rules) == 0 {
		prog.Add(datalog.MustParse(`p(?X) -> r(?X).`).Rules[0])
	}
	return prog
}

// TestDatalogSideCoexistence samples constant-free Datalog programs and
// checks the claim inside the proof of Theorem 7.1: over D = {p(c)},
// () ∈ (Π' ∪ Λ1, q)(D) implies () ∈ (Π' ∪ Λ2, q)(D), so no Datalog program
// can realize the separation.
func TestDatalogSideCoexistence(t *testing.T) {
	w := Theorem71()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		pi := randomDatalog(rng)
		ok, err := w.DatalogCoexistence(pi)
		if err != nil {
			t.Fatalf("program %s: %v", pi, err)
		}
		if !ok {
			t.Fatalf("coexistence violated by Datalog program:\n%s", pi)
		}
	}
}

func TestDatalogCoexistenceRejectsExistentials(t *testing.T) {
	w := Theorem71()
	if _, err := w.DatalogCoexistence(w.Pi); err == nil {
		t.Error("existential program must be rejected on the Datalog side")
	}
}
