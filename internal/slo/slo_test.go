package slo

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// The watchdog contract under a fake clock and a hand-fed registry:
// multi-window semantics (fire only when fast AND slow breach, clear as soon
// as fast recovers), the three objective kinds, the once-per-fire OnBreach
// annotation, the JSONL transition log, and DefaultObjectives' flag mapping.

// harness drives a Watchdog tick-by-tick with a controllable clock.
type harness struct {
	reg *obs.Registry
	now time.Time
	wd  *Watchdog
}

func newHarness(t *testing.T, objectives []Objective, mutate func(cfg *Config)) *harness {
	t.Helper()
	h := &harness{reg: obs.NewRegistry(), now: time.Unix(1000, 0)}
	cfg := Config{
		Objectives: objectives,
		Interval:   time.Second,
		FastWindow: 5 * time.Second,
		SlowWindow: 20 * time.Second,
		Source:     func() *obs.Registry { return h.reg },
		Now:        func() time.Time { return h.now },
	}
	if mutate != nil {
		mutate(&cfg)
	}
	wd, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.wd = wd
	return h
}

// tick advances the fake clock by the interval and evaluates once.
func (h *harness) tick() {
	h.now = h.now.Add(time.Second)
	h.wd.Tick()
}

func alertByName(t *testing.T, wd *Watchdog, name string) Alert {
	t.Helper()
	for _, a := range wd.Alerts() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no alert %q in %v", name, wd.Alerts())
	return Alert{}
}

func TestRatioFiresOnBothWindowsAndClearsFast(t *testing.T) {
	// 10% error budget, fast burn 2 → fast window pages above 20%.
	h := newHarness(t, []Objective{{
		Name: "error_rate", Kind: KindRatio, Bad: "errs", Total: "reqs", Threshold: 0.10,
	}}, nil)

	// Healthy traffic long enough to fill the slow window.
	for i := 0; i < 25; i++ {
		h.reg.Add("reqs", 100)
		h.tick()
	}
	if got := alertByName(t, h.wd, "error_rate"); got.State != "cleared" || got.Fires != 0 {
		t.Fatalf("healthy state = %+v", got)
	}

	// A hard error burst: every request fails. The fast window saturates
	// quickly; the slow window must confirm before the alert fires.
	fired := -1
	for i := 0; i < 25; i++ {
		h.reg.Add("reqs", 100)
		h.reg.Add("errs", 100)
		h.tick()
		if a := alertByName(t, h.wd, "error_rate"); a.State == "firing" {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("sustained 100% error rate never fired")
	}
	if fired < 2 {
		t.Fatalf("fired after %d ticks — the slow window did not gate the blip", fired+1)
	}
	a := alertByName(t, h.wd, "error_rate")
	if a.Fires != 1 || a.FiredAt == 0 {
		t.Fatalf("fired alert = %+v", a)
	}
	if a.Fast <= 0.10*2 {
		t.Fatalf("fast window value %v not above burned threshold", a.Fast)
	}

	// Recovery: errors stop. The alert must clear as soon as the FAST window
	// recovers, long before the slow window forgets the burst.
	cleared := -1
	for i := 0; i < 25; i++ {
		h.reg.Add("reqs", 100)
		h.tick()
		if a := alertByName(t, h.wd, "error_rate"); a.State == "cleared" {
			cleared = i
			break
		}
	}
	if cleared < 0 {
		t.Fatal("alert never cleared after recovery")
	}
	if cleared >= 19 {
		t.Fatalf("cleared only after %d ticks — clear should follow the fast window, not the slow", cleared+1)
	}
	if a := alertByName(t, h.wd, "error_rate"); a.ClearedAt == 0 {
		t.Fatalf("cleared alert = %+v", a)
	}
}

func TestShortBlipDoesNotFire(t *testing.T) {
	h := newHarness(t, []Objective{{
		Name: "error_rate", Kind: KindRatio, Bad: "errs", Total: "reqs", Threshold: 0.10,
	}}, nil)
	for i := 0; i < 22; i++ {
		h.reg.Add("reqs", 100)
		if i == 10 { // one bad second inside otherwise healthy traffic
			h.reg.Add("errs", 60)
		}
		h.tick()
		if a := alertByName(t, h.wd, "error_rate"); a.State == "firing" {
			t.Fatalf("blip fired at tick %d: %+v", i, a)
		}
	}
}

func TestLatencyObjectiveUsesWindowedQuantile(t *testing.T) {
	h := newHarness(t, []Objective{{
		Name: "p99", Kind: KindLatency, Hist: "lat_us", Quantile: 0.99, Threshold: 5000,
	}}, nil)

	// A long slow-latency past: lifetime p99 is terrible...
	for i := 0; i < 30; i++ {
		h.reg.Observe("lat_us", 90000)
	}
	for i := 0; i < 25; i++ {
		h.tick()
	}
	// ...but the recent windows saw no new samples, so nothing fires
	// (windowed judgment, not lifetime).
	if a := alertByName(t, h.wd, "p99"); a.State != "cleared" {
		t.Fatalf("stale lifetime samples fired: %+v", a)
	}

	// Fresh fast samples: windowed p99 healthy.
	for i := 0; i < 22; i++ {
		for j := 0; j < 50; j++ {
			h.reg.Observe("lat_us", 800)
		}
		h.tick()
	}
	if a := alertByName(t, h.wd, "p99"); a.State != "cleared" {
		t.Fatalf("healthy latency fired: %+v", a)
	}

	// Sustained regression above threshold fires.
	for i := 0; i < 25; i++ {
		for j := 0; j < 50; j++ {
			h.reg.Observe("lat_us", 40000)
		}
		h.tick()
	}
	a := alertByName(t, h.wd, "p99")
	if a.State != "firing" {
		t.Fatalf("sustained 40ms p99 never fired: %+v", a)
	}
	if a.Fast <= 5000 {
		t.Fatalf("fast window p99 = %v, want > threshold", a.Fast)
	}
}

func TestGaugeObjectiveWindowedMean(t *testing.T) {
	h := newHarness(t, []Objective{{
		Name: "lag", Kind: KindGauge, Gauge: "repl.lag_seconds", Threshold: 2.0,
	}}, nil)
	h.reg.SetGauge("repl.lag_seconds", 0.1)
	for i := 0; i < 25; i++ {
		h.tick()
	}
	if a := alertByName(t, h.wd, "lag"); a.State != "cleared" {
		t.Fatalf("healthy lag fired: %+v", a)
	}
	h.reg.SetGauge("repl.lag_seconds", 30)
	for i := 0; i < 25; i++ {
		h.tick()
	}
	a := alertByName(t, h.wd, "lag")
	if a.State != "firing" || a.Fast < 2.0 {
		t.Fatalf("sustained lag never fired: %+v", a)
	}
	h.reg.SetGauge("repl.lag_seconds", 0)
	for i := 0; i < 8; i++ {
		h.tick()
	}
	if a := alertByName(t, h.wd, "lag"); a.State != "firing" {
		return // cleared once the fast-window mean dropped under threshold
	}
	t.Fatalf("lag alert stuck firing after recovery: %+v", alertByName(t, h.wd, "lag"))
}

func TestOnBreachAnnotatesOncePerFire(t *testing.T) {
	calls := 0
	h := newHarness(t, []Objective{{
		Name: "error_rate", Kind: KindRatio, Bad: "errs", Total: "reqs", Threshold: 0.10,
	}}, func(cfg *Config) {
		cfg.OnBreach = func(a Alert) Annotation {
			calls++
			return Annotation{TraceIDs: []string{"t1", "t2"}, ProfileCPU: "cpu.pprof", ProfileHeap: "heap.pprof"}
		}
	})
	for i := 0; i < 40; i++ {
		h.reg.Add("reqs", 100)
		h.reg.Add("errs", 100)
		h.tick()
	}
	if calls != 1 {
		t.Fatalf("OnBreach ran %d times for one continuous breach", calls)
	}
	a := alertByName(t, h.wd, "error_rate")
	if len(a.TraceIDs) != 2 || a.ProfileCPU != "cpu.pprof" || a.ProfileHeap != "heap.pprof" {
		t.Fatalf("annotation not attached: %+v", a)
	}
}

func TestAlertLogAppendsTransitions(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "alerts.jsonl")
	h := newHarness(t, []Objective{{
		Name: "error_rate", Kind: KindRatio, Bad: "errs", Total: "reqs", Threshold: 0.10,
	}}, func(cfg *Config) { cfg.LogPath = logPath })
	defer h.wd.Stop()

	// Fire...
	for i := 0; i < 25; i++ {
		h.reg.Add("reqs", 100)
		h.reg.Add("errs", 100)
		h.tick()
	}
	// ...and clear.
	for i := 0; i < 25; i++ {
		h.reg.Add("reqs", 100)
		h.tick()
	}

	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	type line struct {
		TS    time.Time `json:"ts"`
		Name  string    `json:"name"`
		State string    `json:"state"`
	}
	var lines []line
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 2 {
		t.Fatalf("log lines = %+v, want fire + clear", lines)
	}
	if lines[0].Name != "error_rate" || lines[0].State != "firing" ||
		lines[1].State != "cleared" || lines[0].TS.IsZero() {
		t.Fatalf("log transitions = %+v", lines)
	}
}

func TestStartStopLifecycle(t *testing.T) {
	h := newHarness(t, []Objective{{
		Name: "error_rate", Kind: KindRatio, Bad: "errs", Total: "reqs", Threshold: 0.10,
	}}, func(cfg *Config) { cfg.Interval = time.Millisecond })
	h.wd.Start()
	time.Sleep(20 * time.Millisecond)
	h.wd.Stop()
	h.wd.Stop() // idempotent
	var nilWD *Watchdog
	nilWD.Start()
	nilWD.Stop()
	nilWD.Tick()
	if nilWD.Alerts() != nil || nilWD.Firing() != 0 {
		t.Fatal("nil watchdog not inert")
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no Source accepted")
	}
	src := func() *obs.Registry { return obs.NewRegistry() }
	if _, err := New(Config{Source: src, Objectives: []Objective{{Name: ""}}}); err == nil {
		t.Fatal("empty objective name accepted")
	}
	if _, err := New(Config{Source: src, Objectives: []Objective{
		{Name: "a", Kind: KindGauge, Gauge: "g"}, {Name: "a", Kind: KindGauge, Gauge: "g"},
	}}); err == nil {
		t.Fatal("duplicate objective accepted")
	}
}

func TestDefaultObjectives(t *testing.T) {
	all := DefaultObjectives(1000, 2000, 0.01, 0.05, 3)
	if len(all) != 5 {
		t.Fatalf("objectives = %+v, want 5", all)
	}
	names := map[string]Objective{}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("objectives not sorted: %+v", all)
		}
	}
	for _, o := range all {
		names[o.Name] = o
	}
	if o := names["query_p99"]; o.Kind != KindLatency || o.Hist != "serve.latency_us" || o.Threshold != 1000 {
		t.Fatalf("query_p99 = %+v", o)
	}
	if o := names["commit_visible_p99"]; o.Hist != "store.commit_visible_us" || o.Threshold != 2000 {
		t.Fatalf("commit_visible_p99 = %+v", o)
	}
	if o := names["error_rate"]; o.Kind != KindRatio || o.Bad != "serve.errors" || o.Total != "serve.requests" {
		t.Fatalf("error_rate = %+v", o)
	}
	if o := names["shed_rate"]; o.Bad != "serve.shed" || o.Threshold != 0.05 {
		t.Fatalf("shed_rate = %+v", o)
	}
	if o := names["replica_lag_seconds"]; o.Kind != KindGauge || o.Gauge != "repl.lag_seconds" || o.Threshold != 3 {
		t.Fatalf("replica_lag_seconds = %+v", o)
	}

	// Zero thresholds disable objectives one by one.
	if got := DefaultObjectives(0, 0, 0, 0, 0); len(got) != 0 {
		t.Fatalf("all-zero thresholds built %+v", got)
	}
	if got := DefaultObjectives(0, 0, 0.01, 0, 0); len(got) != 1 || got[0].Name != "error_rate" {
		t.Fatalf("single objective = %+v", got)
	}
}
