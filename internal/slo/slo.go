// Package slo is the serving-side SLO watchdog: declarative objectives
// (latency quantiles, error/shed ratios, gauges like replica lag) evaluated
// with multi-window burn-rate rules over the process's own obs registry, the
// way an external alerting stack would evaluate its Prometheus scrape — but
// in-process, so a single binary pages correctly with no collector in the
// loop.
//
// The evaluator samples the registry on a fixed cadence and keeps a bounded
// history of counter values, histogram bucket snapshots, and gauge readings.
// Each objective is judged over two trailing windows: a short one that
// reacts fast and a long one that confirms the burn is sustained. An alert
// fires only when BOTH windows breach (the classic multi-window rule that
// suppresses blips) and clears as soon as the short window recovers (fast
// all-clear). Every transition is appended to a JSONL alert log and kept for
// GET /debug/alerts; on a fresh breach the OnBreach hook runs once, letting
// the serve layer capture a profile and pin the implicated traces so the
// evidence is still there when the operator arrives.
package slo

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Kind selects how an objective is evaluated.
type Kind string

const (
	// KindLatency breaches when the windowed quantile of Hist exceeds
	// Threshold (same unit as the histogram, typically microseconds).
	KindLatency Kind = "latency"
	// KindRatio breaches when the windowed rate Bad/Total exceeds Threshold
	// scaled by the window's burn factor.
	KindRatio Kind = "ratio"
	// KindGauge breaches when the windowed mean of Gauge exceeds Threshold.
	KindGauge Kind = "gauge"
)

// Objective is one declarative SLO target.
type Objective struct {
	// Name identifies the objective (and its alert), e.g. "query_p99".
	Name string `json:"name"`
	// Description is the operator-facing one-liner.
	Description string `json:"description"`
	// Kind selects the evaluation rule.
	Kind Kind `json:"kind"`
	// Hist is the histogram the KindLatency quantile is read from.
	Hist string `json:"hist,omitempty"`
	// Quantile is the latency quantile (default 0.99).
	Quantile float64 `json:"quantile,omitempty"`
	// Bad and Total are the KindRatio counters (rate = ΔBad/ΔTotal).
	Bad   string `json:"bad,omitempty"`
	Total string `json:"total,omitempty"`
	// Gauge is the KindGauge series.
	Gauge string `json:"gauge,omitempty"`
	// Threshold is the target: histogram units for latency, a fraction for
	// ratios, the gauge's unit for gauges.
	Threshold float64 `json:"threshold"`
}

// Alert is one objective's alert state, as served by /debug/alerts and
// logged on every transition.
type Alert struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Kind        Kind    `json:"kind"`
	State       string  `json:"state"` // "firing" or "cleared"
	Threshold   float64 `json:"threshold"`
	// Fast and Slow are the windowed values at the last evaluation.
	Fast float64 `json:"fast_window_value"`
	Slow float64 `json:"slow_window_value"`
	// FiredAt / ClearedAt stamp the most recent transitions (unix nanos).
	FiredAt   int64 `json:"fired_at_unix_ns,omitempty"`
	ClearedAt int64 `json:"cleared_at_unix_ns,omitempty"`
	// Fires counts how many times this objective has fired since start.
	Fires int64 `json:"fires"`
	// TraceIDs, ProfileCPU, and ProfileHeap are the breach annotations
	// attached by the OnBreach hook: the pinned offending traces and the
	// auto-captured profile files.
	TraceIDs    []string `json:"trace_ids,omitempty"`
	ProfileCPU  string   `json:"profile_cpu,omitempty"`
	ProfileHeap string   `json:"profile_heap,omitempty"`
}

// Annotation is what OnBreach returns: evidence links attached to the
// firing alert.
type Annotation struct {
	TraceIDs    []string
	ProfileCPU  string
	ProfileHeap string
}

// Config assembles a Watchdog.
type Config struct {
	// Objectives are the SLO targets to evaluate.
	Objectives []Objective
	// Interval is the sampling cadence (default 1s).
	Interval time.Duration
	// FastWindow is the reactive window (default 30s) and clear condition;
	// SlowWindow is the confirming window (default 5× FastWindow).
	FastWindow time.Duration
	SlowWindow time.Duration
	// FastBurn scales a ratio objective's threshold over the fast window
	// (default 2: a short burst must burn at twice budget to page), SlowBurn
	// over the slow window (default 1).
	FastBurn float64
	SlowBurn float64
	// Source returns the registry to sample, refreshing any point-in-time
	// gauges first (the serve layer's metrics refresh).
	Source func() *obs.Registry
	// OnBreach runs once per firing transition; its annotation (pinned
	// traces, captured profiles) is attached to the alert.
	OnBreach func(a Alert) Annotation
	// LogPath appends one JSON line per alert transition (empty = no log).
	LogPath string
	// Obs receives the watchdog's own telemetry (slo.* series).
	Obs *obs.Obs
	// Now overrides the clock for tests.
	Now func() time.Time
}

// sample is one evaluation tick's view of every series the objectives read.
type sample struct {
	at       time.Time
	counters map[string]int64
	hists    map[string]obs.HistSnapshot
	gauges   map[string]float64
}

// Watchdog evaluates the configured objectives; build with New, drive with
// Start/Stop (or Tick directly in tests).
type Watchdog struct {
	cfg Config

	mu      sync.Mutex
	samples []sample
	alerts  map[string]*Alert
	order   []string
	logf    *os.File

	stop chan struct{}
	done chan struct{}
}

// New builds a watchdog (no goroutine yet; call Start).
func New(cfg Config) (*Watchdog, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("slo: Config.Source is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = 30 * time.Second
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = 5 * cfg.FastWindow
	}
	if cfg.SlowWindow < cfg.FastWindow {
		cfg.SlowWindow = cfg.FastWindow
	}
	if cfg.FastBurn <= 0 {
		cfg.FastBurn = 2
	}
	if cfg.SlowBurn <= 0 {
		cfg.SlowBurn = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	w := &Watchdog{cfg: cfg, alerts: make(map[string]*Alert)}
	for _, o := range cfg.Objectives {
		if o.Name == "" {
			return nil, fmt.Errorf("slo: objective with empty name")
		}
		if _, dup := w.alerts[o.Name]; dup {
			return nil, fmt.Errorf("slo: duplicate objective %q", o.Name)
		}
		if o.Quantile <= 0 || o.Quantile >= 1 {
			o.Quantile = 0.99
		}
		w.alerts[o.Name] = &Alert{
			Name: o.Name, Description: o.Description, Kind: o.Kind,
			State: "cleared", Threshold: o.Threshold,
		}
		w.order = append(w.order, o.Name)
	}
	if cfg.LogPath != "" {
		f, err := os.OpenFile(cfg.LogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("slo: open alert log: %w", err)
		}
		w.logf = f
	}
	return w, nil
}

// Start launches the evaluation loop.
func (w *Watchdog) Start() {
	if w == nil || w.stop != nil {
		return
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go func() {
		defer close(w.done)
		t := time.NewTicker(w.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w.Tick()
			case <-w.stop:
				return
			}
		}
	}()
}

// Stop halts the loop and closes the alert log.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	if w.stop != nil {
		close(w.stop)
		<-w.done
		w.stop = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.logf != nil {
		w.logf.Close()
		w.logf = nil
	}
}

// Alerts snapshots every objective's alert state in declaration order.
func (w *Watchdog) Alerts() []Alert {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Alert, 0, len(w.order))
	for _, name := range w.order {
		out = append(out, *w.alerts[name])
	}
	return out
}

// Firing reports how many alerts are currently firing.
func (w *Watchdog) Firing() int {
	n := 0
	for _, a := range w.Alerts() {
		if a.State == "firing" {
			n++
		}
	}
	return n
}

// Tick runs one evaluation: sample the registry, age out history, judge
// every objective, transition alerts. Exposed for tests; Start calls it on
// the configured cadence.
func (w *Watchdog) Tick() {
	if w == nil {
		return
	}
	now := w.cfg.Now()
	reg := w.cfg.Source()
	s := w.takeSample(now, reg)

	w.mu.Lock()
	w.samples = append(w.samples, s)
	horizon := now.Add(-w.cfg.SlowWindow - w.cfg.Interval)
	drop := 0
	for drop < len(w.samples)-1 && w.samples[drop].at.Before(horizon) {
		drop++
	}
	if drop > 0 {
		w.samples = append(w.samples[:0:0], w.samples[drop:]...)
	}
	history := w.samples
	w.mu.Unlock()

	w.cfg.Obs.Count("slo.evals", 1)
	var transitions []Alert
	firing := 0
	for _, o := range w.cfg.Objectives {
		fast, fastBreach := w.judge(o, history, now, w.cfg.FastWindow, w.cfg.FastBurn)
		slow, slowBreach := w.judge(o, history, now, w.cfg.SlowWindow, w.cfg.SlowBurn)

		w.mu.Lock()
		a := w.alerts[o.Name]
		a.Fast, a.Slow = fast, slow
		var fired, cleared bool
		if a.State != "firing" && fastBreach && slowBreach {
			a.State = "firing"
			a.FiredAt = now.UnixNano()
			a.Fires++
			fired = true
		} else if a.State == "firing" && !fastBreach {
			a.State = "cleared"
			a.ClearedAt = now.UnixNano()
			cleared = true
		}
		snapshot := *a
		w.mu.Unlock()

		if fired {
			w.cfg.Obs.Count("slo.alerts_fired", 1)
			if w.cfg.OnBreach != nil {
				ann := w.cfg.OnBreach(snapshot)
				w.mu.Lock()
				a.TraceIDs = ann.TraceIDs
				a.ProfileCPU = ann.ProfileCPU
				a.ProfileHeap = ann.ProfileHeap
				snapshot = *a
				w.mu.Unlock()
			}
			transitions = append(transitions, snapshot)
		} else if cleared {
			w.cfg.Obs.Count("slo.alerts_cleared", 1)
			transitions = append(transitions, snapshot)
		}
		if snapshot.State == "firing" {
			firing++
		}
	}
	w.cfg.Obs.Gauge("slo.alerts_firing", float64(firing))
	for _, a := range transitions {
		w.logTransition(a)
	}
}

// takeSample reads every series any objective needs.
func (w *Watchdog) takeSample(now time.Time, reg *obs.Registry) sample {
	s := sample{
		at:       now,
		counters: make(map[string]int64),
		hists:    make(map[string]obs.HistSnapshot),
		gauges:   make(map[string]float64),
	}
	for _, o := range w.cfg.Objectives {
		switch o.Kind {
		case KindLatency:
			snap, _ := reg.HistSnapshot(o.Hist)
			s.hists[o.Hist] = snap
		case KindRatio:
			s.counters[o.Bad] = reg.Counter(o.Bad)
			s.counters[o.Total] = reg.Counter(o.Total)
		case KindGauge:
			s.gauges[o.Gauge] = reg.Gauge(o.Gauge)
		}
	}
	return s
}

// baseline finds the oldest sample inside the trailing window.
func baseline(history []sample, now time.Time, window time.Duration) (sample, bool) {
	cut := now.Add(-window)
	for _, s := range history {
		if !s.at.Before(cut) {
			return s, true
		}
	}
	return sample{}, false
}

// judge evaluates one objective over one trailing window, returning the
// windowed value and whether it breaches.
func (w *Watchdog) judge(o Objective, history []sample, now time.Time, window time.Duration, burn float64) (float64, bool) {
	if len(history) < 2 {
		return 0, false
	}
	latest := history[len(history)-1]
	base, ok := baseline(history[:len(history)-1], now, window)
	if !ok {
		base = history[0]
	}
	switch o.Kind {
	case KindLatency:
		q := o.Quantile
		if q <= 0 || q >= 1 {
			q = 0.99
		}
		diff := diffHist(base.hists[o.Hist], latest.hists[o.Hist])
		if diff.Count == 0 {
			return 0, false
		}
		v := diff.Quantile(q)
		return v, v > o.Threshold
	case KindRatio:
		bad := latest.counters[o.Bad] - base.counters[o.Bad]
		total := latest.counters[o.Total] - base.counters[o.Total]
		if total <= 0 {
			return 0, false
		}
		v := float64(bad) / float64(total)
		return v, v > o.Threshold*burn
	case KindGauge:
		// Windowed mean of the sampled gauge (the latest sample included).
		cut := now.Add(-window)
		var sum float64
		var n int
		for _, s := range history {
			if s.at.Before(cut) {
				continue
			}
			sum += s.gauges[o.Gauge]
			n++
		}
		if n == 0 {
			return 0, false
		}
		v := sum / float64(n)
		return v, v > o.Threshold
	default:
		return 0, false
	}
}

// diffHist subtracts two cumulative histogram snapshots bucket-wise, giving
// the distribution of samples observed inside the window. Max carries the
// lifetime max (an upper bound for the window — the best a bucketed
// histogram can do).
func diffHist(base, latest obs.HistSnapshot) obs.HistSnapshot {
	var d obs.HistSnapshot
	for i := range latest.Buckets {
		if n := latest.Buckets[i] - base.Buckets[i]; n > 0 {
			d.Buckets[i] = n
			d.Count += n
		}
	}
	d.Sum = latest.Sum - base.Sum
	d.Max = latest.Max
	return d
}

// logTransition appends one alert-transition line to the JSONL log.
func (w *Watchdog) logTransition(a Alert) {
	w.cfg.Obs.Event("slo.alert", obs.F("name", a.Name), obs.F("state", a.State),
		obs.F("fast", a.Fast), obs.F("slow", a.Slow), obs.F("threshold", a.Threshold))
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.logf == nil {
		return
	}
	line, err := json.Marshal(struct {
		TS time.Time `json:"ts"`
		Alert
	}{TS: w.cfg.Now(), Alert: a})
	if err != nil {
		return
	}
	w.logf.Write(append(line, '\n'))
}

// DefaultObjectives builds the standard triqd objective set from the
// -slo-* flag values; a zero/negative threshold disables that objective.
func DefaultObjectives(queryP99US, commitP99US float64, errRate, shedRate, lagSeconds float64) []Objective {
	var out []Objective
	if queryP99US > 0 {
		out = append(out, Objective{
			Name: "query_p99", Kind: KindLatency, Hist: "serve.latency_us", Quantile: 0.99,
			Threshold: queryP99US, Description: "query p99 latency over target",
		})
	}
	if commitP99US > 0 {
		out = append(out, Objective{
			Name: "commit_visible_p99", Kind: KindLatency, Hist: "store.commit_visible_us", Quantile: 0.99,
			Threshold: commitP99US, Description: "commit-visible p99 latency over target",
		})
	}
	if errRate > 0 {
		out = append(out, Objective{
			Name: "error_rate", Kind: KindRatio, Bad: "serve.errors", Total: "serve.requests",
			Threshold: errRate, Description: "request error rate burning the budget",
		})
	}
	if shedRate > 0 {
		out = append(out, Objective{
			Name: "shed_rate", Kind: KindRatio, Bad: "serve.shed", Total: "serve.requests",
			Threshold: shedRate, Description: "admission shed rate burning the budget",
		})
	}
	if lagSeconds > 0 {
		out = append(out, Objective{
			Name: "replica_lag_seconds", Kind: KindGauge, Gauge: "repl.lag_seconds",
			Threshold: lagSeconds, Description: "replica staleness behind the primary wall clock",
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
