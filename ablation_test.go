package repro

// Ablation benchmarks for the design choices called out in DESIGN.md:
// semi-naive vs naive evaluation, restricted vs Skolem chase, top-down
// ProofTree vs bottom-up chase for single-atom certification, and the
// exponential growth of the OPT translation (the Section 5.1 remark that
// P_dat has exponential size).

import (
	"fmt"
	"testing"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/owl"
	"repro/internal/sparql"
	"repro/internal/translate"
	"repro/internal/triq"
	"repro/internal/workload"
)

func BenchmarkAblationSemiNaive(b *testing.B) {
	prog := datalog.MustParse(`
		e(?X, ?Y) -> tc(?X, ?Y).
		e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z).
	`)
	db := workload.Chain(60)
	for _, naive := range []bool{false, true} {
		name := "semi-naive"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := chase.Run(db, prog, chase.Options{NaiveEvaluation: naive}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationChaseMode(b *testing.B) {
	// A DL-LiteR-style ontology load where the restricted chase can skip
	// already-satisfied existentials.
	o := workload.University(2, 3, 3, false)
	db, err := chase.FromFacts(owl.GraphToDB(o.ToGraph()))
	if err != nil {
		b.Fatal(err)
	}
	prog := owl.Program().Positive()
	for _, mode := range []chase.Mode{chase.Skolem, chase.Restricted} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := chase.Run(db, prog, chase.Options{Mode: mode, MaxDepth: 8}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationProofTreeVsChase(b *testing.B) {
	// Certifying one ground atom: top-down ProofTree vs computing the whole
	// bottom-up stable ground semantics.
	db := chase.NewInstance(
		datalog.MustParseAtom("e(a, b)"),
		datalog.MustParseAtom("g(b)"),
	)
	prog := datalog.MustParse(`
		e(?X, ?Y) -> exists ?Z e(?Y, ?Z).
		e(?X, ?Y), g(?Y) -> out(?X).
	`)
	goal := datalog.MustParseAtom("out(a)")
	b.Run("prooftree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pv, err := triq.NewProver(db, prog, triq.ProofOptions{})
			if err != nil {
				b.Fatal(err)
			}
			ok, err := pv.Proves(goal)
			if err != nil || !ok {
				b.Fatal(ok, err)
			}
		}
	})
	b.Run("stable-ground", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gr, err := chase.StableGround(db, prog, chase.Options{MaxDepth: 30}, 2)
			if err != nil || !gr.Ground.Has(goal) {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE9_PropertyPathBaseline(b *testing.B) {
	g := workload.TransportGraph(2, 2, 3, "acme")
	var alphabet []string
	for _, p := range g.Predicates() {
		alphabet = append(alphabet, p.Value)
	}
	exprs := sparql.EnumeratePaths(alphabet, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, e := range exprs {
			sparql.EvalPath(g, e)
		}
	}
}

// nestedOpt builds (… ((B0 OPT B1) OPT B2) … OPT Bd).
func nestedOpt(depth int) sparql.Pattern {
	mk := func(i int) sparql.Pattern {
		return sparql.BGP{Triples: []sparql.TriplePattern{
			sparql.TP(sparql.Var("X"), sparql.IRI(fmt.Sprintf("p%d", i)), sparql.Var(fmt.Sprintf("V%d", i))),
		}}
	}
	p := mk(0)
	for i := 1; i <= depth; i++ {
		p = sparql.Opt{L: p, R: mk(i)}
	}
	return p
}

// TestTranslationSizeExponentialInOpt checks the Section 5.1 remark: P_dat
// is a non-recursive program of exponential size — nested OPT doubles the
// number of possible domains (and hence predicates/rules) per level.
func TestTranslationSizeExponentialInOpt(t *testing.T) {
	var sizes []int
	for depth := 1; depth <= 6; depth++ {
		tr, err := translate.Translate(nestedOpt(depth), translate.Plain)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(tr.Query.Program.Rules))
	}
	for i := 1; i < len(sizes); i++ {
		if float64(sizes[i]) < 1.5*float64(sizes[i-1]) {
			t.Errorf("rule count not exponential: %v", sizes)
			break
		}
	}
	t.Logf("rules per OPT depth 1..6: %v", sizes)
}

func BenchmarkAblationOptTranslationSize(b *testing.B) {
	for _, depth := range []int{2, 4, 6} {
		p := nestedOpt(depth)
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := translate.Translate(p, translate.Plain); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestNaiveEvaluationAgrees(t *testing.T) {
	prog := datalog.MustParse(`
		e(?X, ?Y) -> tc(?X, ?Y).
		e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z).
		tc(?X, ?X) -> cyc(?X).
	`)
	db := chase.NewInstance(
		datalog.MustParseAtom("e(a, b)"),
		datalog.MustParseAtom("e(b, c)"),
		datalog.MustParseAtom("e(c, a)"),
	)
	semi, err := chase.Run(db, prog, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := chase.Run(db, prog, chase.Options{NaiveEvaluation: true})
	if err != nil {
		t.Fatal(err)
	}
	if !semi.Instance.Equal(naive.Instance) {
		t.Error("naive and semi-naive evaluation disagree")
	}
}
