// Command triqbench runs the full experiment harness — one experiment per
// paper artifact (Table 1, Figure 1, Theorems 4.4, 5.2, 5.3, 6.7, 6.15,
// Lemmas 6.5/6.6, Theorems 7.1/7.2) — and prints the paper-vs-measured
// tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	triqbench            # run everything
//	triqbench -only E2   # run one experiment
//	triqbench -json      # machine-readable BENCH JSON (tables + per-stage breakdowns)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	only := flag.String("only", "", "run a single experiment by id (T1, F1, E1 … E9)")
	asJSON := flag.Bool("json", false, "emit the tables as JSON (with per-stage engine breakdowns) instead of markdown")
	flag.Parse()

	runners := map[string]func() *bench.Table{
		"T1": bench.RunT1, "F1": bench.RunF1,
		"E1": bench.RunE1, "E2": bench.RunE2, "E3": bench.RunE3,
		"E4": bench.RunE4, "E5": bench.RunE5, "E6": bench.RunE6,
		"E7": bench.RunE7, "E8": bench.RunE8, "E9": bench.RunE9,
	}

	var tables []*bench.Table
	if *only != "" {
		r, ok := runners[strings.ToUpper(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "triqbench: unknown experiment %q\n", *only)
			os.Exit(1)
		}
		tables = append(tables, r())
	} else {
		tables = bench.RunAll()
	}

	failed := 0
	for _, t := range tables {
		if !t.OK {
			failed++
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintln(os.Stderr, "triqbench:", err)
			os.Exit(1)
		}
	} else {
		for _, t := range tables {
			fmt.Println(t.Render())
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "triqbench: %d experiment(s) did not reproduce\n", failed)
		os.Exit(1)
	}
	if !*asJSON {
		fmt.Printf("all %d experiments reproduced.\n", len(tables))
	}
}
