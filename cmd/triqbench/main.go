// Command triqbench runs the full experiment harness — one experiment per
// paper artifact (Table 1, Figure 1, Theorems 4.4, 5.2, 5.3, 6.7, 6.15,
// Lemmas 6.5/6.6, Theorems 7.1/7.2) — and prints the paper-vs-measured
// tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	triqbench            # run everything
//	triqbench -only E2   # run one experiment
//	triqbench -json      # machine-readable BENCH JSON (tables + per-stage breakdowns)
//
// With -server it switches to concurrent-client mode against a running
// triqd, reporting throughput and latency quantiles (the serving baseline
// recorded in EXPERIMENTS.md E10):
//
//	triqbench -server http://localhost:8471 -parallel 8 -requests 400
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	only := flag.String("only", "", "run a single experiment by id (T1, F1, E1 … E9, E11 … E17)")
	asJSON := flag.Bool("json", false, "emit the tables as JSON (with per-stage engine breakdowns) instead of markdown")
	parallelism := flag.Int("parallelism", 0, "chase workers for every experiment (0 = GOMAXPROCS, 1 = sequential; E11 sweeps its own)")
	server := flag.String("server", "", "concurrent-client mode: base URL of a running triqd (e.g. http://localhost:8471)")
	endpoint := flag.String("endpoint", "/query", "with -server: endpoint to hit (/query or /sparql)")
	reqBody := flag.String("body", "", "with -server: JSON request body (default: the transport-closure program)")
	parallel := flag.Int("parallel", 8, "with -server: number of concurrent clients")
	requests := flag.Int("requests", 200, "with -server: total requests across all clients")
	traceSample := flag.Float64("trace-sample", 0, "with -server: send W3C traceparent headers, this fraction with the sampled flag")
	writePct := flag.Float64("write-pct", 0, "with -server: percentage of requests sent as /insert-/delete batches (write soak)")
	writeBatch := flag.Int("write-batch", 8, "with -server: triples per mutation batch")
	retryBudget := flag.Int("retry-budget", 0, "with -server: total 503 retries the run may spend honoring Retry-After (0 = no retries)")
	readYourWrites := flag.Bool("read-your-writes", false, "with -server: reads demand the highest acknowledged write epoch (X-Triq-Min-Epoch); reports observed staleness waits")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("triqbench"))
		os.Exit(0)
	}

	if *server != "" {
		os.Exit(clientMain(*server, *endpoint, *reqBody, *parallel, *requests, *traceSample, *writePct, *writeBatch, *retryBudget, *readYourWrites, *asJSON))
	}
	bench.SetParallelism(*parallelism)

	runners := map[string]func() *bench.Table{
		"T1": bench.RunT1, "F1": bench.RunF1,
		"E1": bench.RunE1, "E2": bench.RunE2, "E3": bench.RunE3,
		"E4": bench.RunE4, "E5": bench.RunE5, "E6": bench.RunE6,
		"E7": bench.RunE7, "E8": bench.RunE8, "E9": bench.RunE9,
		"E11": bench.RunE11, "E12": bench.RunE12, "E13": bench.RunE13, "E14": bench.RunE14,
		"E15": bench.RunE15, "E16": bench.RunE16, "E17": bench.RunE17,
	}

	var tables []*bench.Table
	if *only != "" {
		r, ok := runners[strings.ToUpper(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "triqbench: unknown experiment %q\n", *only)
			os.Exit(1)
		}
		tables = append(tables, r())
	} else {
		tables = bench.RunAll()
	}

	failed := 0
	for _, t := range tables {
		if !t.OK {
			failed++
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintln(os.Stderr, "triqbench:", err)
			os.Exit(1)
		}
	} else {
		for _, t := range tables {
			fmt.Println(t.Render())
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "triqbench: %d experiment(s) did not reproduce\n", failed)
		os.Exit(1)
	}
	if !*asJSON {
		fmt.Printf("all %d experiments reproduced.\n", len(tables))
	}
}

// defaultClientBody is the body clientMain posts when -body is empty: the
// paper's transport-service closure as a /query request.
const defaultClientBody = `{"program": "triple(?X, partOf, transportService) -> ts(?X). triple(?X, partOf, ?Y), ts(?Y) -> ts(?X). ts(?T), triple(?X, ?T, ?Y) -> conn(?X, ?Y). ts(?T), triple(?X, ?T, ?Z), conn(?Z, ?Y) -> conn(?X, ?Y). conn(?X, ?Y) -> query(?X, ?Y)."}`

// clientMain is the concurrent-client mode: drive a running triqd and
// report throughput + latency quantiles (plus observed staleness waits and
// the node's replication lag, in epochs and seconds, from /readyz).
func clientMain(server, endpoint, body string, parallel, requests int, traceSample, writePct float64, writeBatch, retryBudget int, readYourWrites, asJSON bool) int {
	if body == "" {
		body = defaultClientBody
	}
	res, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		URL:            strings.TrimRight(server, "/") + endpoint,
		Body:           []byte(body),
		Parallel:       parallel,
		Requests:       requests,
		Timeout:        60 * time.Second,
		Trace:          traceSample > 0,
		TraceSample:    traceSample,
		WritePct:       writePct,
		MutateBase:     strings.TrimRight(server, "/"),
		WriteBatch:     writeBatch,
		RetryBudget:    retryBudget,
		ReadYourWrites: readYourWrites,
		StatusBase:     strings.TrimRight(server, "/"),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "triqbench:", err)
		return 1
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "triqbench:", err)
			return 1
		}
	} else {
		fmt.Printf("triqd load: %s %s parallel=%d\n  %s\n", server, endpoint, parallel, res)
	}
	if res.OK == 0 {
		fmt.Fprintln(os.Stderr, "triqbench: no request succeeded")
		return 1
	}
	return 0
}
