// Command triq evaluates a TriQ 1.0 / TriQ-Lite 1.0 query over an RDF graph.
//
// Usage:
//
//	triq -data graph.nt -program rules.dlog -query answer [-lang triqlite] [-regime]
//	triq -data graph.nt -program rules.dlog -prove 'p(a, b)'
//
// The data file is N-Triples (bare prefixed names allowed); the program file
// uses the rule syntax of the paper, e.g.
//
//	triple(?X, partOf, transportService) -> ts(?X).
//	triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
//	ts(?T), triple(?X, ?T, ?Y) -> query(?X, ?Y).
//
// With -regime the fixed OWL 2 QL core ontology program τ_owl2ql_core is
// prepended, so the query sees the entailed triples in triple1(·,·,·).
// With -prove the ProofTree decision procedure of Section 6.3 is run on a
// single goal atom and the proof tree is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/triq"
)

func main() {
	var (
		dataPath    = flag.String("data", "", "N-Triples data file (required)")
		programPath = flag.String("program", "", "Datalog program file (required)")
		queryPred   = flag.String("query", "query", "output predicate")
		langName    = flag.String("lang", "triqlite", "language check: triq | triqlite | any")
		regime      = flag.Bool("regime", false, "prepend the fixed OWL 2 QL core ontology program")
		ontoPath    = flag.String("ontology", "", "OWL 2 QL core ontology file in functional-style syntax; its RDF serialization is merged into the data")
		exact       = flag.Bool("exact", false, "use the exact ProofTree enumeration (TriQ-Lite 1.0 only)")
		prove       = flag.String("prove", "", "instead of querying, decide one ground atom with ProofTree and print the proof")
		analyze     = flag.Bool("analyze", false, "instead of querying, print the program analysis report (strata, affected positions, wards, dialects)")
		dot         = flag.Bool("dot", false, "with -analyze: print the predicate dependency graph in Graphviz DOT; with -prove: print the proof tree in DOT")
		maxDepth    = flag.Int("depth", 0, "chase null-depth bound (0 = default)")
	)
	flag.Parse()
	if err := run(*dataPath, *programPath, *queryPred, *langName, *regime, *ontoPath, *exact, *prove, *analyze, *dot, *maxDepth); err != nil {
		fmt.Fprintln(os.Stderr, "triq:", err)
		os.Exit(1)
	}
}

func run(dataPath, programPath, queryPred, langName string, regime bool, ontoPath string, exact bool, prove string, analyze, dot bool, maxDepth int) error {
	if programPath == "" {
		return fmt.Errorf("-program is required")
	}
	if analyze {
		src, err := os.ReadFile(programPath)
		if err != nil {
			return err
		}
		prog, err := datalog.Parse(string(src))
		if err != nil {
			return err
		}
		if regime {
			prog = owl.Program().Merge(prog)
		}
		if dot {
			fmt.Print(datalog.DependencyDOT(prog))
			return nil
		}
		fmt.Print(datalog.Report(prog))
		return nil
	}
	if dataPath == "" {
		return fmt.Errorf("-data is required")
	}
	dataFile, err := os.Open(dataPath)
	if err != nil {
		return err
	}
	defer dataFile.Close()
	g, err := rdf.ParseNTriples(dataFile)
	if err != nil {
		return err
	}
	if ontoPath != "" {
		ontoSrc, err := os.ReadFile(ontoPath)
		if err != nil {
			return err
		}
		onto, err := owl.ParseOntology(string(ontoSrc))
		if err != nil {
			return err
		}
		g.AddGraph(onto.ToGraph())
	}
	src, err := os.ReadFile(programPath)
	if err != nil {
		return err
	}
	prog, err := datalog.Parse(string(src))
	if err != nil {
		return err
	}
	if regime {
		prog = owl.Program().Merge(prog)
	}
	db, err := chase.FromFacts(owl.GraphToDB(g))
	if err != nil {
		return err
	}

	if prove != "" {
		goal, err := datalog.ParseAtom(prove)
		if err != nil {
			return fmt.Errorf("parsing goal: %w", err)
		}
		pv, err := triq.NewProver(db, prog, triq.ProofOptions{})
		if err != nil {
			return err
		}
		node, ok, err := pv.Prove(goal)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Printf("%s is NOT in Π(D)\n", goal)
			return nil
		}
		if dot {
			fmt.Print(node.DOT())
			return nil
		}
		fmt.Printf("%s is in Π(D); proof tree:\n\n%s", goal, node.Render())
		return nil
	}

	var lang triq.Language
	switch strings.ToLower(langName) {
	case "triq":
		lang = triq.TriQ10
	case "triqlite":
		lang = triq.TriQLite10
	case "any":
		lang = triq.Unrestricted
	default:
		return fmt.Errorf("unknown language %q (want triq, triqlite, or any)", langName)
	}
	q := datalog.NewQuery(prog, queryPred)
	opts := triq.Options{}
	if maxDepth > 0 {
		opts.Chase.MaxDepth = maxDepth
	}
	var res *triq.Result
	if exact {
		res, err = triq.EvalExact(db, q, opts)
	} else {
		res, err = triq.Eval(db, q, lang, opts)
	}
	if err != nil {
		return err
	}
	if res.Answers.Inconsistent {
		fmt.Println("⊤ (the graph is inconsistent with the program's constraints)")
		return nil
	}
	for _, tup := range res.Answers.Tuples {
		parts := make([]string, len(tup))
		for i, t := range tup {
			parts[i] = t.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	fmt.Fprintf(os.Stderr, "%d answers (depth %d, exact=%v, %d facts derived)\n",
		len(res.Answers.Tuples), res.Depth, res.Exact, res.Stats.FactsDerived)
	return nil
}
