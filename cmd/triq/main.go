// Command triq evaluates a TriQ 1.0 / TriQ-Lite 1.0 query over an RDF graph.
//
// Usage:
//
//	triq -data graph.nt -program rules.dlog -query answer [-lang triqlite] [-regime]
//	triq -data graph.nt -program rules.dlog -prove 'p(a, b)'
//
// The data file is N-Triples (bare prefixed names allowed); the program file
// uses the rule syntax of the paper, e.g.
//
//	triple(?X, partOf, transportService) -> ts(?X).
//	triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
//	ts(?T), triple(?X, ?T, ?Y) -> query(?X, ?Y).
//
// With -regime the fixed OWL 2 QL core ontology program τ_owl2ql_core is
// prepended, so the query sees the entailed triples in triple1(·,·,·).
// With -prove the ProofTree decision procedure of Section 6.3 is run on a
// single goal atom and the proof tree is printed.
//
// Observability (see README "Observability"): -explain prints the per-query
// EXPLAIN report (per-rule chase stats with provenance, worker balance, stage
// times), -metrics prints the per-rule chase breakdown and the metrics
// registry to stderr, -trace streams the JSONL span trace to a file, and
// -pprof serves net/http/pprof.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/limits"
	"repro/internal/obs"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/serve"
	"repro/internal/triq"
)

// Exit codes of the resource-governance contract (see README "Resource
// limits & cancellation"): 124 mirrors timeout(1).
const (
	exitUsage    = 1   // flag/parse/IO errors
	exitInternal = 2   // recovered engine panic
	exitBudget   = 3   // fact/round/visit budget tripped
	exitTimeout  = 124 // -timeout deadline exceeded
)

// config collects the CLI flags.
type config struct {
	data      string        // N-Triples data file
	program   string        // Datalog program file
	query     string        // output predicate
	lang      string        // triq | triqlite | any
	regime    bool          // prepend τ_owl2ql_core
	ontology  string        // OWL functional-syntax file merged into the data
	exact     bool          // exact ProofTree enumeration
	prove     string        // decide one ground atom instead of querying
	analyze   bool          // print the program analysis report
	dot       bool          // DOT output for -analyze / -prove
	depth     int           // chase null-depth bound
	timeout   time.Duration // wall-clock deadline (0 = none)
	maxFacts  int           // chase fact budget (0 = none)
	maxRounds int           // chase round budget (0 = none)
	maxVisits int           // proof-search visit budget (0 = default)
	workers   int           // chase worker count (0 = GOMAXPROCS)
	trace     string        // JSONL span trace file ("" = off)
	explain   bool          // print the per-query EXPLAIN report to stderr
	metrics   bool          // print metrics summary to stderr
	pprof     string        // pprof listen address ("" = off)
	jsonOut   bool          // emit the shared JSON wire format on stdout
}

func main() {
	var cfg config
	flag.StringVar(&cfg.data, "data", "", "N-Triples data file (required)")
	flag.StringVar(&cfg.program, "program", "", "Datalog program file (required)")
	flag.StringVar(&cfg.query, "query", "query", "output predicate")
	flag.StringVar(&cfg.lang, "lang", "triqlite", "language check: triq | triqlite | any")
	flag.BoolVar(&cfg.regime, "regime", false, "prepend the fixed OWL 2 QL core ontology program")
	flag.StringVar(&cfg.ontology, "ontology", "", "OWL 2 QL core ontology file in functional-style syntax; its RDF serialization is merged into the data")
	flag.BoolVar(&cfg.exact, "exact", false, "use the exact ProofTree enumeration (TriQ-Lite 1.0 only)")
	flag.StringVar(&cfg.prove, "prove", "", "instead of querying, decide one ground atom with ProofTree and print the proof")
	flag.BoolVar(&cfg.analyze, "analyze", false, "instead of querying, print the program analysis report (strata, affected positions, wards, dialects)")
	flag.BoolVar(&cfg.dot, "dot", false, "with -analyze: print the predicate dependency graph in Graphviz DOT; with -prove: print the proof tree in DOT")
	flag.IntVar(&cfg.depth, "depth", 0, "chase null-depth bound (0 = default)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "wall-clock evaluation deadline, e.g. 30s (0 = none; exit 124 on expiry)")
	flag.IntVar(&cfg.maxFacts, "max-facts", 0, "abort the chase once the instance holds this many facts (0 = unlimited; partial answers + exit 3)")
	flag.IntVar(&cfg.maxRounds, "max-rounds", 0, "abort the chase after this many rounds per stratum (0 = unlimited; partial answers + exit 3)")
	flag.IntVar(&cfg.maxVisits, "max-visits", 0, "proof-search component-visit budget for -prove/-exact (0 = default; exit 3 on trip)")
	flag.IntVar(&cfg.workers, "parallelism", 0, "chase worker count (0 = GOMAXPROCS, 1 = sequential; answers are identical at every setting)")
	flag.StringVar(&cfg.trace, "trace", "", "write a JSONL span trace to this file")
	flag.BoolVar(&cfg.explain, "explain", false, "print the EXPLAIN report (per-rule chase stats with provenance, worker balance, stage times) to stderr; with -json it is embedded in the response")
	flag.BoolVar(&cfg.metrics, "metrics", false, "print the per-rule chase breakdown and metrics registry to stderr")
	flag.StringVar(&cfg.pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit results (and errors) as JSON in the same wire format the triqd server uses")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("triq"))
		return
	}
	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	if err := run(ctx, cfg); err != nil {
		if cfg.jsonOut {
			// The same failure body a triqd error response carries.
			_ = json.NewEncoder(os.Stdout).Encode(limits.ToWire(err))
		}
		fmt.Fprintln(os.Stderr, "triq:", err)
		if tr, ok := limits.TruncationOf(err); ok {
			fmt.Fprint(os.Stderr, tr.String())
		}
		os.Exit(exitCode(err))
	}
}

// exitCode maps the error taxonomy onto the exit-code contract.
func exitCode(err error) int {
	switch {
	case errors.Is(err, limits.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
		return exitTimeout
	case limits.IsBudget(err):
		return exitBudget
	case errors.Is(err, limits.ErrInternal):
		return exitInternal
	}
	return exitUsage
}

// setupObs builds the observability handle from the trace/metrics flags. The
// returned closer flushes and closes the trace file. With both flags off it
// returns a nil handle: no registry, no spans, no I/O.
func setupObs(cfg config) (*obs.Obs, func() error, error) {
	if cfg.trace == "" && !cfg.metrics {
		return nil, func() error { return nil }, nil
	}
	if cfg.trace == "" {
		return obs.New(), func() error { return nil }, nil
	}
	f, err := os.Create(cfg.trace)
	if err != nil {
		return nil, nil, err
	}
	o := obs.NewWithSink(f)
	return o, func() error {
		if err := o.SinkErr(); err != nil {
			f.Close()
			return fmt.Errorf("writing trace: %w", err)
		}
		return f.Close()
	}, nil
}

// startPprof serves net/http/pprof on addr for the lifetime of the process.
func startPprof(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "pprof: listening on http://%s/debug/pprof/\n", ln.Addr())
	go http.Serve(ln, nil) // pprof handlers live on http.DefaultServeMux
	return ln, nil
}

func run(ctx context.Context, cfg config) (err error) {
	// One pathological query must not take down the process with a raw
	// panic: recover it into a typed ErrInternal (exit 2).
	defer limits.Recover(&err)
	if cfg.program == "" {
		return fmt.Errorf("-program is required")
	}
	if cfg.pprof != "" {
		ln, err := startPprof(cfg.pprof)
		if err != nil {
			return err
		}
		defer ln.Close()
	}
	if cfg.analyze {
		src, err := os.ReadFile(cfg.program)
		if err != nil {
			return err
		}
		prog, err := datalog.Parse(string(src))
		if err != nil {
			return err
		}
		if cfg.regime {
			prog = owl.Program().Merge(prog)
		}
		if cfg.dot {
			fmt.Print(datalog.DependencyDOT(prog))
			return nil
		}
		fmt.Print(datalog.Report(prog))
		return nil
	}
	if cfg.data == "" {
		return fmt.Errorf("-data is required")
	}
	o, closeObs, err := setupObs(cfg)
	if err != nil {
		return err
	}
	dataFile, err := os.Open(cfg.data)
	if err != nil {
		closeObs()
		return err
	}
	defer dataFile.Close()
	g, err := rdf.ParseNTriples(dataFile)
	if err != nil {
		closeObs()
		return err
	}
	if cfg.ontology != "" {
		ontoSrc, err := os.ReadFile(cfg.ontology)
		if err != nil {
			closeObs()
			return err
		}
		onto, err := owl.ParseOntology(string(ontoSrc))
		if err != nil {
			closeObs()
			return err
		}
		g.AddGraph(onto.ToGraph())
	}
	src, err := os.ReadFile(cfg.program)
	if err != nil {
		closeObs()
		return err
	}
	prog, err := datalog.Parse(string(src))
	if err != nil {
		closeObs()
		return err
	}
	if cfg.regime {
		prog = owl.Program().Merge(prog)
	}
	db, err := chase.FromFacts(owl.GraphToDB(g))
	if err != nil {
		closeObs()
		return err
	}

	if cfg.prove != "" {
		err := runProve(ctx, cfg, db, prog, o)
		if cerr := closeObs(); err == nil {
			err = cerr
		}
		return err
	}
	err = runQuery(ctx, cfg, db, prog, o)
	if cerr := closeObs(); err == nil {
		err = cerr
	}
	return err
}

func runProve(ctx context.Context, cfg config, db *chase.Instance, prog *datalog.Program, o *obs.Obs) error {
	goal, err := datalog.ParseAtom(cfg.prove)
	if err != nil {
		return fmt.Errorf("parsing goal: %w", err)
	}
	pv, err := triq.NewProver(db, prog, triq.ProofOptions{Obs: o, MaxVisits: cfg.maxVisits})
	if err != nil {
		return err
	}
	node, ok, err := pv.ProveCtx(ctx, goal)
	if err != nil {
		return err
	}
	if cfg.metrics {
		m := pv.Metrics()
		fmt.Fprintf(os.Stderr, "prover: %d components, %d expansions, %d memo hits / %d misses, %d resolutions, max depth %d (visit budget %d)\n",
			m.Components, m.Expansions, m.MemoHits, m.MemoMisses, m.Resolutions, m.MaxRecursionDepth, m.VisitBudget)
		fmt.Fprint(os.Stderr, o.Summary())
	}
	if !ok {
		fmt.Printf("%s is NOT in Π(D)\n", goal)
		return nil
	}
	if cfg.dot {
		fmt.Print(node.DOT())
		return nil
	}
	fmt.Printf("%s is in Π(D); proof tree:\n\n%s", goal, node.Render())
	return nil
}

func runQuery(ctx context.Context, cfg config, db *chase.Instance, prog *datalog.Program, o *obs.Obs) error {
	var lang triq.Language
	switch strings.ToLower(cfg.lang) {
	case "triq":
		lang = triq.TriQ10
	case "triqlite":
		lang = triq.TriQLite10
	case "any":
		lang = triq.Unrestricted
	default:
		return fmt.Errorf("unknown language %q (want triq, triqlite, or any)", cfg.lang)
	}
	q := datalog.NewQuery(prog, cfg.query)
	opts := triq.Options{}
	if cfg.depth > 0 {
		opts.Chase.MaxDepth = cfg.depth
	}
	opts.Chase.MaxFacts = cfg.maxFacts
	opts.Chase.MaxRounds = cfg.maxRounds
	opts.Chase.Parallelism = cfg.workers
	opts.Chase.Obs = o
	var res *triq.Result
	var rep *triq.ExplainReport
	var err error
	switch {
	case cfg.exact && cfg.explain:
		opts.MaxVisits = cfg.maxVisits
		res, rep, err = triq.ExplainExactCtx(ctx, db, q, opts)
	case cfg.exact:
		opts.MaxVisits = cfg.maxVisits
		res, err = triq.EvalExactCtx(ctx, db, q, opts)
	case cfg.explain:
		res, rep, err = triq.ExplainCtx(ctx, db, q, lang, opts)
	default:
		res, err = triq.EvalCtx(ctx, db, q, lang, opts)
	}
	if err != nil {
		return err
	}
	if cfg.jsonOut {
		// The same body shape a triqd 200 carries (serve.QueryResponse), so
		// downstream tooling parses CLI and server output identically.
		resp := serve.QueryResponse{
			Rows:         make([]string, 0, len(res.Answers.Tuples)),
			Inconsistent: res.Answers.Inconsistent,
			Exact:        res.Exact,
			Incomplete:   res.Incomplete,
			Truncation:   res.Truncation,
			Attempts:     1,
			Explain:      rep,
		}
		for _, tup := range res.Answers.Tuples {
			parts := make([]string, len(tup))
			for i, t := range tup {
				parts[i] = t.String()
			}
			resp.Rows = append(resp.Rows, strings.Join(parts, " "))
		}
		return json.NewEncoder(os.Stdout).Encode(resp)
	}
	if res.Answers.Inconsistent {
		fmt.Println("⊤ (the graph is inconsistent with the program's constraints)")
		return nil
	}
	for _, tup := range res.Answers.Tuples {
		parts := make([]string, len(tup))
		for i, t := range tup {
			parts[i] = t.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	fmt.Fprintf(os.Stderr, "%d answers (depth %d, exact=%v, %d facts derived)\n",
		len(res.Answers.Tuples), res.Depth, res.Exact, res.Stats.FactsDerived)
	if rep != nil {
		fmt.Fprint(os.Stderr, rep.String())
	}
	if cfg.metrics {
		fmt.Fprint(os.Stderr, res.Stats.String())
		fmt.Fprint(os.Stderr, o.Summary())
	}
	if res.Incomplete {
		// The partial answers above are sound; signal the truncation on
		// stderr and through the exit code (3).
		return res.Truncation.Err()
	}
	return nil
}
