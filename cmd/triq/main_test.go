package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/limits"
	"repro/internal/obs"
	"repro/internal/serve"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const cliData = `
TheAirline partOf transportService .
A311 partOf TheAirline .
Oxford A311 London .
`

const cliProgram = `
triple(?X, partOf, transportService) -> ts(?X).
triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
ts(?T), triple(?X, ?T, ?Y) -> conn(?X, ?Y).
conn(?X, ?Y) -> query(?X, ?Y).
`

// base returns the default flag values, mirroring main().
func base() config {
	return config{query: "query", lang: "triqlite"}
}

func TestCLIRunQuery(t *testing.T) {
	cfg := base()
	cfg.data = writeFile(t, "g.nt", cliData)
	cfg.program = writeFile(t, "p.dlog", cliProgram)
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	// Exact mode too.
	exact := cfg
	exact.exact = true
	if err := run(context.Background(), exact); err != nil {
		t.Fatal(err)
	}
	// TriQ language name and explicit depth.
	tq := cfg
	tq.lang = "triq"
	tq.depth = 6
	if err := run(context.Background(), tq); err != nil {
		t.Fatal(err)
	}
	// "any" language.
	any := cfg
	any.lang = "any"
	if err := run(context.Background(), any); err != nil {
		t.Fatal(err)
	}
}

func TestCLIProve(t *testing.T) {
	cfg := base()
	cfg.data = writeFile(t, "g.nt", cliData)
	cfg.program = writeFile(t, "p.dlog", cliProgram)
	cfg.prove = "ts(A311)"
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	// DOT output of the proof.
	dot := cfg
	dot.dot = true
	if err := run(context.Background(), dot); err != nil {
		t.Fatal(err)
	}
	// Unprovable goal still succeeds (prints NOT).
	not := cfg
	not.prove = "ts(Oxford)"
	if err := run(context.Background(), not); err != nil {
		t.Fatal(err)
	}
}

func TestCLIAnalyze(t *testing.T) {
	cfg := base()
	cfg.program = writeFile(t, "p.dlog", cliProgram)
	cfg.analyze = true
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	dot := cfg
	dot.dot = true
	if err := run(context.Background(), dot); err != nil {
		t.Fatal(err)
	}
	// Regime merge in analyze mode.
	reg := cfg
	reg.regime = true
	if err := run(context.Background(), reg); err != nil {
		t.Fatal(err)
	}
}

func TestCLIOntologyAndRegime(t *testing.T) {
	cfg := base()
	cfg.data = writeFile(t, "g.nt", "")
	cfg.ontology = writeFile(t, "o.owl", `
		SubClassOf(dog, animal)
		ClassAssertion(dog, rex)
	`)
	cfg.program = writeFile(t, "p.dlog", `
		triple1(?X, rdf:type, animal), C(?X) -> query(?X).
	`)
	cfg.regime = true
	cfg.depth = 8
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCLITraceAndMetrics runs a query and a proof with -trace and -metrics on
// and checks the trace file is valid JSONL covering the chase round, per-rule,
// and prover span kinds (the ISSUE acceptance criterion).
func TestCLITraceAndMetrics(t *testing.T) {
	cfg := base()
	cfg.data = writeFile(t, "g.nt", cliData)
	cfg.program = writeFile(t, "p.dlog", cliProgram)
	cfg.trace = filepath.Join(t.TempDir(), "trace.jsonl")
	cfg.metrics = true
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	prove := cfg
	prove.prove = "ts(A311)"
	prove.trace = filepath.Join(t.TempDir(), "prove.jsonl")
	if err := run(context.Background(), prove); err != nil {
		t.Fatal(err)
	}

	wantKinds := map[string][]string{
		cfg.trace:   {"chase.deepen", "chase.round", "chase.rule", "chase.run", "triq.eval"},
		prove.trace: {"prover.prove"},
	}
	for file, want := range wantKinds {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := obs.ParseTrace(raw)
		if err != nil {
			t.Fatalf("%s: invalid JSONL: %v", file, err)
		}
		if len(recs) == 0 {
			t.Fatalf("%s: empty trace", file)
		}
		kinds := map[string]bool{}
		for _, k := range obs.TraceKinds(recs) {
			kinds[k] = true
		}
		for _, k := range want {
			if !kinds[k] {
				t.Errorf("%s: missing span kind %q (got %v)", file, k, obs.TraceKinds(recs))
			}
		}
	}
}

// TestCLIMetricsOnly exercises -metrics without -trace (in-memory registry,
// no file I/O).
func TestCLIMetricsOnly(t *testing.T) {
	cfg := base()
	cfg.data = writeFile(t, "g.nt", cliData)
	cfg.program = writeFile(t, "p.dlog", cliProgram)
	cfg.metrics = true
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCLIErrors(t *testing.T) {
	data := writeFile(t, "g.nt", cliData)
	prog := writeFile(t, "p.dlog", cliProgram)
	mod := func(f func(*config)) config {
		cfg := base()
		cfg.data = data
		cfg.program = prog
		f(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  config
	}{
		{"missing program", mod(func(c *config) { c.program = "" })},
		{"missing data", mod(func(c *config) { c.data = "" })},
		{"bad language", mod(func(c *config) { c.lang = "klingon" })},
		{"bad data path", mod(func(c *config) { c.data = data + ".nope" })},
		{"bad program path", mod(func(c *config) { c.program = prog + ".nope" })},
		{"bad goal", mod(func(c *config) { c.prove = "?X" })},
		{"bad ontology path", mod(func(c *config) { c.ontology = "/nope.owl" })},
		{"bad trace path", mod(func(c *config) { c.trace = filepath.Join(data, "nope", "t.jsonl") })},
	}
	for _, tc := range cases {
		if err := run(context.Background(), tc.cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestCLIExitCodeContract pins the resource-governance exit codes: budget
// trips map to 3, deadlines to 124, recovered panics to 2, other errors to 1.
func TestCLIExitCodeContract(t *testing.T) {
	data := writeFile(t, "g.nt", cliData)
	prog := writeFile(t, "p.dlog", cliProgram)

	budget := base()
	budget.data, budget.program = data, prog
	budget.maxFacts = 4
	err := run(context.Background(), budget)
	if err == nil || exitCode(err) != exitBudget {
		t.Fatalf("max-facts: want exit %d, got err=%v code=%d", exitBudget, err, exitCode(err))
	}

	deadline := base()
	deadline.data, deadline.program = data, prog
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	err = run(ctx, deadline)
	if err == nil || exitCode(err) != exitTimeout {
		t.Fatalf("timeout: want exit %d, got err=%v code=%d", exitTimeout, err, exitCode(err))
	}

	boom := base()
	boom.data, boom.program = data, prog
	restore := limits.SetGlobal(limits.NewPlan(limits.Fault{Point: "chase.rule", Action: limits.ActPanic}))
	err = run(context.Background(), boom)
	restore()
	if err == nil || exitCode(err) != exitInternal {
		t.Fatalf("panic: want exit %d, got err=%v code=%d", exitInternal, err, exitCode(err))
	}

	usage := base()
	if err := run(context.Background(), usage); err == nil || exitCode(err) != exitUsage {
		t.Fatalf("usage: want exit %d, got %v", exitUsage, err)
	}
}

// captureStdout redirects os.Stdout around f and returns what it wrote.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestCLIJSONOutput pins the -json contract: the stdout document is the same
// serve.QueryResponse shape a triqd 200 carries, truncation included.
func TestCLIJSONOutput(t *testing.T) {
	data := writeFile(t, "g.nt", cliData)
	prog := writeFile(t, "p.dlog", cliProgram)

	cfg := base()
	cfg.data, cfg.program = data, prog
	cfg.jsonOut = true
	out := captureStdout(t, func() {
		if err := run(context.Background(), cfg); err != nil {
			t.Error(err)
		}
	})
	var resp serve.QueryResponse
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatalf("stdout is not a QueryResponse: %v\n%s", err, out)
	}
	if len(resp.Rows) == 0 || resp.Incomplete {
		t.Fatalf("want complete rows, got %+v", resp)
	}

	// A budget trip mirrors the server's 200 contract: incomplete body with
	// the truncation report, not an error document.
	trunc := cfg
	trunc.maxFacts = 6
	out = captureStdout(t, func() {
		if err := run(context.Background(), trunc); err != nil {
			t.Error(err)
		}
	})
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatalf("truncated stdout: %v\n%s", err, out)
	}
	if !resp.Incomplete || resp.Truncation == nil {
		t.Fatalf("want incomplete + truncation, got %+v", resp)
	}
	if resp.Truncation.Limit != limits.LimitFacts {
		t.Fatalf("truncation.limit = %q, want %q", resp.Truncation.Limit, limits.LimitFacts)
	}
	// The wire error for hard failures round-trips through limits.WireError.
	w := limits.ToWire(limits.NewError(limits.ErrDeadline, limits.Truncation{}))
	buf, _ := json.Marshal(w)
	var back limits.WireError
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(back.Err(), limits.ErrDeadline) {
		t.Fatal("wire error lost its sentinel")
	}
}
