package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const cliData = `
TheAirline partOf transportService .
A311 partOf TheAirline .
Oxford A311 London .
`

const cliProgram = `
triple(?X, partOf, transportService) -> ts(?X).
triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
ts(?T), triple(?X, ?T, ?Y) -> conn(?X, ?Y).
conn(?X, ?Y) -> query(?X, ?Y).
`

func TestCLIRunQuery(t *testing.T) {
	data := writeFile(t, "g.nt", cliData)
	prog := writeFile(t, "p.dlog", cliProgram)
	if err := run(data, prog, "query", "triqlite", false, "", false, "", false, false, 0); err != nil {
		t.Fatal(err)
	}
	// Exact mode too.
	if err := run(data, prog, "query", "triqlite", false, "", true, "", false, false, 0); err != nil {
		t.Fatal(err)
	}
	// TriQ language name and explicit depth.
	if err := run(data, prog, "query", "triq", false, "", false, "", false, false, 6); err != nil {
		t.Fatal(err)
	}
	// "any" language.
	if err := run(data, prog, "query", "any", false, "", false, "", false, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCLIProve(t *testing.T) {
	data := writeFile(t, "g.nt", cliData)
	prog := writeFile(t, "p.dlog", cliProgram)
	if err := run(data, prog, "query", "triqlite", false, "", false, "ts(A311)", false, false, 0); err != nil {
		t.Fatal(err)
	}
	// DOT output of the proof.
	if err := run(data, prog, "query", "triqlite", false, "", false, "ts(A311)", false, true, 0); err != nil {
		t.Fatal(err)
	}
	// Unprovable goal still succeeds (prints NOT).
	if err := run(data, prog, "query", "triqlite", false, "", false, "ts(Oxford)", false, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCLIAnalyze(t *testing.T) {
	prog := writeFile(t, "p.dlog", cliProgram)
	if err := run("", prog, "query", "triqlite", false, "", false, "", true, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("", prog, "query", "triqlite", false, "", false, "", true, true, 0); err != nil {
		t.Fatal(err)
	}
	// Regime merge in analyze mode.
	if err := run("", prog, "query", "triqlite", true, "", false, "", true, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCLIOntologyAndRegime(t *testing.T) {
	data := writeFile(t, "g.nt", "")
	onto := writeFile(t, "o.owl", `
		SubClassOf(dog, animal)
		ClassAssertion(dog, rex)
	`)
	prog := writeFile(t, "p.dlog", `
		triple1(?X, rdf:type, animal), C(?X) -> query(?X).
	`)
	if err := run(data, prog, "query", "triqlite", true, onto, false, "", false, false, 8); err != nil {
		t.Fatal(err)
	}
}

func TestCLIErrors(t *testing.T) {
	data := writeFile(t, "g.nt", cliData)
	prog := writeFile(t, "p.dlog", cliProgram)
	cases := []struct {
		name string
		err  func() error
	}{
		{"missing program", func() error {
			return run(data, "", "query", "triqlite", false, "", false, "", false, false, 0)
		}},
		{"missing data", func() error {
			return run("", prog, "query", "triqlite", false, "", false, "", false, false, 0)
		}},
		{"bad language", func() error {
			return run(data, prog, "query", "klingon", false, "", false, "", false, false, 0)
		}},
		{"bad data path", func() error {
			return run(data+".nope", prog, "query", "triqlite", false, "", false, "", false, false, 0)
		}},
		{"bad program path", func() error {
			return run(data, prog+".nope", "query", "triqlite", false, "", false, "", false, false, 0)
		}},
		{"bad goal", func() error {
			return run(data, prog, "query", "triqlite", false, "", false, "?X", false, false, 0)
		}},
		{"bad ontology path", func() error {
			return run(data, prog, "query", "triqlite", false, "/nope.owl", false, "", false, false, 0)
		}},
	}
	for _, tc := range cases {
		if tc.err() == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
