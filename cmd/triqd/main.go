// Command triqd is the resilient TriQ query server: it serves TriQ
// (Datalog) and SPARQL queries over HTTP with admission control, load
// shedding, per-request deadlines, transient-fault retries, per-endpoint
// circuit breakers, and graceful drain on SIGINT/SIGTERM — and, with
// -wal-dir, a durable live write path: POST /insert and /delete apply
// N-Triples batches atomically through an epoch-versioned copy-on-write
// store backed by a checksummed write-ahead log, recovered on boot.
//
// Usage:
//
//	triqd -data graph.nt [-ontology o.owl] [-addr :8471] \
//	      [-wal-dir store/] [-wal-sync always|interval|none] \
//	      [-checkpoint-every 1024] [-max-body-bytes 8388608] \
//	      [-concurrency 4] [-queue 16] [-queue-timeout 1s] \
//	      [-default-timeout 10s] [-max-timeout 60s] [-drain-timeout 15s] \
//	      [-retries 3] [-parallelism 1] \
//	      [-replica-of http://primary:8471 [-promote-on-loss] \
//	       [-promote-grace 5s] [-proxy-writes]] [-staleness-wait 2s] \
//	      [-slo-query-p99 250ms] [-slo-commit-p99 50ms] \
//	      [-slo-error-rate 0.01] [-slo-shed-rate 0.05] \
//	      [-slo-replica-lag 5s] [-slo-interval 1s] \
//	      [-slo-window-fast 30s] [-slo-window-slow 150s] \
//	      [-alert-log alerts.jsonl]
//
// The -slo-* flags arm the in-process SLO watchdog: each non-zero target
// becomes an objective evaluated with multi-window burn-rate rules over the
// server's own metrics; firing/cleared alerts are served at /debug/alerts
// (with auto-captured profiles and pinned traces attached on a breach) and
// appended to -alert-log as JSON lines.
//
// With -wal-dir the listener answers immediately and /readyz reports
// {"state":"recovering"} (503) until the snapshot and WAL have replayed;
// -data seeds the store only on first boot (an already-populated store wins).
// Without -wal-dir mutations still work against a volatile in-memory store.
//
// With -replica-of the process boots as a read replica: it tails the
// primary's WAL stream (GET /repl/stream), serves reads with epoch tokens,
// and refuses writes toward the primary (or forwards them with
// -proxy-writes). POST /repl/promote — or -promote-on-loss after
// -promote-grace of primary silence — turns it into a writable primary
// over its own recovered WAL. See the README's "Replication" section.
//
// Endpoints and the status-code contract are documented in the README
// ("Serving", "Durability & writes") and in internal/serve. A quick check
// against a running instance:
//
//	curl -s localhost:8471/readyz
//	curl -s localhost:8471/query -d '{"program":"triple(?X, partOf, ?Y) -> query(?X, ?Y)."}'
//	curl -s localhost:8471/insert -d '{"triples":"A320 partOf TheAirline .\n"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/chase"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/repl"
	"repro/internal/serve"
	"repro/internal/slo"
)

// config collects the triqd flags.
type config struct {
	data     string // N-Triples seed data file
	ontology string // OWL 2 QL core ontology merged into the data
	addr     string // listen address

	walDir          string        // store directory ("" = volatile in-memory store)
	walSync         string        // WAL fsync policy: always, interval, none
	walSyncInterval time.Duration // flush cadence under -wal-sync=interval
	checkpointEvery int           // snapshot checkpoint every N batches (negative disables)
	checkpointBytes int64         // ... or when the WAL exceeds this size (negative disables)
	maxBodyBytes    int64         // request body cap on every POST endpoint

	concurrency  int           // evaluation slots
	queue        int           // admission queue length
	queueTimeout time.Duration // longest queue wait before shedding

	defaultTimeout time.Duration // per-request deadline when unset
	maxTimeout     time.Duration // cap on client-requested deadlines
	drainTimeout   time.Duration // graceful-shutdown budget
	retries        int           // attempts per evaluation (1 = no retries)
	parallelism    int           // chase workers per evaluation (0 = GOMAXPROCS)

	materialize bool // maintain chased materializations across epochs
	matMaxFacts int  // cap per materialized instance (0 = chase default)
	matPrograms int  // how many programs stay materialized (0 = default 4)

	replicaOf     string        // primary base URL ("" = primary / standalone)
	promoteOnLoss bool          // self-promote after promoteGrace of primary silence
	promoteGrace  time.Duration // silence tolerance before self-promotion
	proxyWrites   bool          // forward replica-received writes to the primary
	stalenessWait time.Duration // bound on min-epoch catch-up waits

	slowlog          string        // JSONL slow-query sink file ("" = ring only)
	slowlogThreshold time.Duration // record requests at least this slow (0 = off)

	traceSample     float64       // head-sampling rate for request traces
	traceStore      int           // in-memory trace store capacity
	traceSeed       int64         // trace-id / sampler seed (0 = clock)
	noTrace         bool          // disable request tracing entirely
	profileDir      string        // slow-query auto-profile directory ("" = off)
	autoprofileCPU  time.Duration // CPU profile capture duration
	autoprofileCool time.Duration // minimum time between auto-captures
	healthInterval  time.Duration // runtime health sampling cadence

	timelineCap int // epoch-timeline ring capacity (0 = 512)

	sloQueryP99   time.Duration // query p99 latency target (0 = objective off)
	sloCommitP99  time.Duration // commit-visible p99 latency target
	sloErrorRate  float64       // request error-rate budget (fraction)
	sloShedRate   float64       // admission shed-rate budget (fraction)
	sloReplicaLag time.Duration // replica wall-clock lag target
	sloInterval   time.Duration // watchdog sampling cadence
	sloFast       time.Duration // fast (reactive) burn window
	sloSlow       time.Duration // slow (confirming) burn window
	alertLog      string        // JSONL alert-transition sink file
}

func main() {
	var cfg config
	flag.StringVar(&cfg.data, "data", "", "N-Triples data file (seeds the store on first boot; required without -wal-dir)")
	flag.StringVar(&cfg.ontology, "ontology", "", "OWL 2 QL core ontology file; its RDF serialization is merged into the data")
	flag.StringVar(&cfg.addr, "addr", ":8471", "listen address")
	flag.StringVar(&cfg.walDir, "wal-dir", "", "durable store directory (snapshot + write-ahead log); empty serves writes from a volatile in-memory store")
	flag.StringVar(&cfg.walSync, "wal-sync", "always", "WAL fsync policy: always (acknowledged writes survive crashes), interval, or none")
	flag.DurationVar(&cfg.walSyncInterval, "wal-sync-interval", 100*time.Millisecond, "flush cadence under -wal-sync=interval")
	flag.IntVar(&cfg.checkpointEvery, "checkpoint-every", 1024, "write a snapshot checkpoint and truncate the WAL every N batches (negative disables)")
	flag.Int64Var(&cfg.checkpointBytes, "checkpoint-bytes", 64<<20, "also checkpoint when the WAL exceeds this many bytes (negative disables)")
	flag.Int64Var(&cfg.maxBodyBytes, "max-body-bytes", 8<<20, "request body cap on every POST endpoint; oversized bodies get 413 (negative disables)")
	flag.IntVar(&cfg.concurrency, "concurrency", 4, "concurrent evaluation slots")
	flag.IntVar(&cfg.queue, "queue", 16, "admission queue length (0 disables queueing)")
	flag.DurationVar(&cfg.queueTimeout, "queue-timeout", time.Second, "longest a request may queue before it is shed")
	flag.DurationVar(&cfg.defaultTimeout, "default-timeout", 10*time.Second, "per-request evaluation deadline when the request sets none")
	flag.DurationVar(&cfg.maxTimeout, "max-timeout", 60*time.Second, "cap on client-requested deadlines")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 15*time.Second, "graceful-shutdown budget; stragglers are canceled when it expires")
	flag.IntVar(&cfg.retries, "retries", 3, "evaluation attempts per request (1 disables retrying)")
	flag.IntVar(&cfg.parallelism, "parallelism", 1, "chase workers per evaluation (0 = GOMAXPROCS, 1 = sequential; keep slots × workers ≈ cores)")
	flag.BoolVar(&cfg.materialize, "materialize", false, "maintain chased materializations incrementally across epochs and serve matching queries from them")
	flag.IntVar(&cfg.matMaxFacts, "mat-max-facts", 0, "with -materialize: drop a materialized instance that grows past this many facts (0 = the chase fact budget)")
	flag.IntVar(&cfg.matPrograms, "mat-programs", 0, "with -materialize: how many distinct programs stay materialized at once (0 = 4)")
	flag.StringVar(&cfg.replicaOf, "replica-of", "", "boot as a read replica of this primary base URL (e.g. http://10.0.0.1:8471)")
	flag.BoolVar(&cfg.promoteOnLoss, "promote-on-loss", false, "with -replica-of: self-promote to writable primary after -promote-grace of primary silence")
	flag.DurationVar(&cfg.promoteGrace, "promote-grace", repl.DefaultPromoteGrace, "with -promote-on-loss: how long the primary may be silent before failover")
	flag.BoolVar(&cfg.proxyWrites, "proxy-writes", false, "with -replica-of: forward writes to the primary instead of refusing them with 503")
	flag.DurationVar(&cfg.stalenessWait, "staleness-wait", 2*time.Second, "longest a min-epoch read waits for the store to catch up before shedding 503")
	flag.StringVar(&cfg.slowlog, "slowlog", "", "append slow-query entries as JSON lines to this file (implies -slowlog-threshold 1s when unset)")
	flag.DurationVar(&cfg.slowlogThreshold, "slowlog-threshold", 0, "record requests whose total time meets this threshold at /debug/slowlog (0 disables unless -slowlog is set)")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 0.1, "fraction of requests whose full span tree is recorded (incoming sampled traceparents always record)")
	flag.IntVar(&cfg.traceStore, "trace-store", 256, "in-memory trace store capacity for /debug/trace")
	flag.Int64Var(&cfg.traceSeed, "trace-seed", 0, "trace id / sampling seed (0 derives from the clock)")
	flag.BoolVar(&cfg.noTrace, "no-trace", false, "disable request tracing (no traceparent echo, no /debug/trace)")
	flag.StringVar(&cfg.profileDir, "profile-dir", "", "directory for slow-query auto-captured CPU/heap profiles (empty disables)")
	flag.DurationVar(&cfg.autoprofileCPU, "autoprofile-cpu", 2*time.Second, "CPU profile duration per auto-capture")
	flag.DurationVar(&cfg.autoprofileCool, "autoprofile-cooldown", time.Minute, "minimum time between auto-captures")
	flag.DurationVar(&cfg.healthInterval, "health-interval", 10*time.Second, "runtime health sampling cadence for /metrics (negative disables)")
	flag.IntVar(&cfg.timelineCap, "timeline-cap", 512, "epoch-timeline ring capacity behind /debug/epochs")
	flag.DurationVar(&cfg.sloQueryP99, "slo-query-p99", 0, "SLO: query p99 latency target; burn-rate alerts at /debug/alerts (0 disables this objective)")
	flag.DurationVar(&cfg.sloCommitP99, "slo-commit-p99", 0, "SLO: commit-visible p99 latency target (WAL append to reader-visible swap)")
	flag.Float64Var(&cfg.sloErrorRate, "slo-error-rate", 0, "SLO: request error-rate budget as a fraction, e.g. 0.01 (0 disables)")
	flag.Float64Var(&cfg.sloShedRate, "slo-shed-rate", 0, "SLO: admission shed-rate budget as a fraction (0 disables)")
	flag.DurationVar(&cfg.sloReplicaLag, "slo-replica-lag", 0, "SLO: replica wall-clock staleness target behind the primary (0 disables)")
	flag.DurationVar(&cfg.sloInterval, "slo-interval", time.Second, "SLO: watchdog sampling cadence")
	flag.DurationVar(&cfg.sloFast, "slo-window-fast", 30*time.Second, "SLO: fast burn window (reacts and clears)")
	flag.DurationVar(&cfg.sloSlow, "slo-window-slow", 0, "SLO: slow burn window confirming a sustained burn (0 = 5× fast)")
	flag.StringVar(&cfg.alertLog, "alert-log", "", "append SLO alert transitions as JSON lines to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("triqd"))
		os.Exit(0)
	}
	os.Exit(realMain(cfg))
}

func realMain(cfg config) int {
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "triqd:", err)
		return 1
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	if err := run(context.Background(), cfg, ln, stop); err != nil {
		fmt.Fprintln(os.Stderr, "triqd:", err)
		return 1
	}
	return 0
}

// loadGraph reads the dataset (and optional ontology) from disk.
func loadGraph(cfg config) (*repro.Graph, error) {
	f, err := os.Open(cfg.data)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := rdf.ParseNTriples(f)
	if err != nil {
		return nil, err
	}
	if cfg.ontology != "" {
		src, err := os.ReadFile(cfg.ontology)
		if err != nil {
			return nil, err
		}
		onto, err := owl.ParseOntology(string(src))
		if err != nil {
			return nil, err
		}
		g.AddGraph(onto.ToGraph())
	}
	return g, nil
}

// run serves until the context dies, a signal arrives, or the listener
// fails; then it drains gracefully. Tests drive it directly with a loopback
// listener and a fake signal channel.
func run(ctx context.Context, cfg config, ln net.Listener, stop <-chan os.Signal) error {
	if cfg.data == "" && cfg.walDir == "" && cfg.replicaOf == "" {
		ln.Close()
		return errors.New("-data, -wal-dir, or -replica-of is required")
	}
	if cfg.replicaOf == "" && (cfg.promoteOnLoss || cfg.proxyWrites) {
		ln.Close()
		return errors.New("-promote-on-loss and -proxy-writes require -replica-of")
	}
	syncPolicy, err := repro.ParseSyncPolicy(cfg.walSync)
	if err != nil {
		ln.Close()
		return err
	}
	queue := cfg.queue
	if queue == 0 {
		queue = -1 // AdmissionConfig semantics: negative disables queueing
	}
	slowCfg := serve.SlowLogConfig{Threshold: cfg.slowlogThreshold}
	if cfg.slowlog != "" {
		if slowCfg.Threshold <= 0 {
			slowCfg.Threshold = time.Second
		}
		f, err := os.OpenFile(cfg.slowlog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			ln.Close()
			return err
		}
		defer f.Close()
		slowCfg.Sink = f
	}
	if cfg.profileDir != "" {
		if err := os.MkdirAll(cfg.profileDir, 0o755); err != nil {
			ln.Close()
			return err
		}
	}
	o := obs.New()
	// The materializer's chase bounds must match the ones serve's evaluate
	// uses for ordinary requests (it declines to serve under mismatched
	// bounds), so both are configured from the same flags here.
	var m *mat.Materializer
	if cfg.materialize {
		m = mat.New(mat.Config{
			Chase:       chase.Options{Parallelism: cfg.parallelism},
			MaxFacts:    cfg.matMaxFacts,
			MaxPrograms: cfg.matPrograms,
			Obs:         o,
		})
	}
	srv := serve.New(serve.Config{
		Admission: serve.AdmissionConfig{
			MaxConcurrent: cfg.concurrency,
			MaxQueue:      queue,
			QueueTimeout:  cfg.queueTimeout,
		},
		Retry:          serve.RetryConfig{MaxAttempts: cfg.retries},
		DefaultTimeout: cfg.defaultTimeout,
		MaxTimeout:     cfg.maxTimeout,
		Obs:            o,
		SlowLog:        slowCfg,
		Parallelism:    cfg.parallelism,
		Trace: serve.TraceConfig{
			Sample:   cfg.traceSample,
			Capacity: cfg.traceStore,
			Seed:     cfg.traceSeed,
			Disable:  cfg.noTrace,
		},
		AutoProfile: serve.AutoProfileConfig{
			Dir:         cfg.profileDir,
			CPUDuration: cfg.autoprofileCPU,
			Cooldown:    cfg.autoprofileCool,
		},
		HealthInterval: cfg.healthInterval,
		MaxBodyBytes:   cfg.maxBodyBytes,
		StalenessWait:  cfg.stalenessWait,
		ProxyWrites:    cfg.proxyWrites,
		Mat:            m,
	})

	// The listener answers immediately — /readyz reports 503
	// {"state":"recovering"} while the snapshot and WAL replay — so a rolling
	// deploy can health-check the process without routing traffic early.
	srv.SetRecovering(true)
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "triqd: listening on %s, recovering store\n", ln.Addr())

	st, err := openStore(cfg, syncPolicy, m, o)
	if err != nil {
		hs.Close()
		<-serveErr
		return err
	}
	if m != nil {
		// Pin the materializer to the recovered (or freshly seeded) epoch;
		// from here every commit flows through OnCommit and keeps it exact.
		m.Reset(st.Current().Seq)
		fmt.Fprintf(os.Stderr, "triqd: incremental materialization enabled at epoch %d\n", st.Current().Seq)
	}
	srv.SetStore(st)

	// Replica mode: install the replication handle before readiness flips so
	// /readyz never reports plain "ready" on an unpromoted replica, then
	// start tailing the primary.
	var rep *repl.Replica
	if cfg.replicaOf != "" {
		rep = repl.New(repl.Config{
			Primary:       cfg.replicaOf,
			Store:         st,
			Obs:           o,
			PromoteOnLoss: cfg.promoteOnLoss,
			PromoteGrace:  cfg.promoteGrace,
			// Replica-apply spans land in the same store /debug/trace serves,
			// so a sampled mutation's distributed trace is inspectable here.
			Traces:    srv.TraceStore(),
			TraceSeed: cfg.traceSeed,
		})
		srv.SetReplica(rep)
		rep.Start(ctx)
		fmt.Fprintf(os.Stderr, "triqd: replica of %s (epoch %d at boot)\n",
			cfg.replicaOf, st.Current().Seq)
	}
	// The SLO watchdog samples the server's own registry on a cadence and
	// serves burn-rate alerts at /debug/alerts; a breach captures profiles
	// and pins the implicated traces via the server's OnSLOBreach hook.
	objectives := slo.DefaultObjectives(
		float64(cfg.sloQueryP99.Microseconds()),
		float64(cfg.sloCommitP99.Microseconds()),
		cfg.sloErrorRate,
		cfg.sloShedRate,
		cfg.sloReplicaLag.Seconds(),
	)
	var watch *slo.Watchdog
	if len(objectives) > 0 {
		watch, err = slo.New(slo.Config{
			Objectives: objectives,
			Interval:   cfg.sloInterval,
			FastWindow: cfg.sloFast,
			SlowWindow: cfg.sloSlow,
			Source:     srv.MetricsRegistry,
			OnBreach:   srv.OnSLOBreach,
			LogPath:    cfg.alertLog,
			Obs:        o,
		})
		if err != nil {
			if rep != nil {
				rep.Stop()
			}
			st.Close()
			hs.Close()
			<-serveErr
			return err
		}
		srv.SetSLO(watch)
		watch.Start()
		defer watch.Stop()
		slow := cfg.sloSlow
		if slow <= 0 {
			slow = 5 * cfg.sloFast
		}
		fmt.Fprintf(os.Stderr, "triqd: SLO watchdog armed: %d objective(s), windows %s/%s\n",
			len(objectives), cfg.sloFast, slow)
	}

	srv.SetRecovering(false)
	fmt.Fprintf(os.Stderr, "triqd: ready: epoch %d, %d triples\n",
		st.Current().Seq, st.Current().Graph.Len())

	select {
	case err := <-serveErr:
		if rep != nil {
			rep.Stop()
		}
		st.Close()
		return fmt.Errorf("serve: %w", err)
	case <-stop:
		fmt.Fprintln(os.Stderr, "triqd: signal received, draining")
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "triqd: context done, draining")
	}

	dctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if rep != nil {
		rep.Stop() // disconnect from the primary before the store closes
	}
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- hs.Shutdown(dctx) }() // stop accepting now
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "triqd:", err)
	}
	if err := <-shutdownDone; err != nil {
		hs.Close()
	}
	if err := st.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "triqd: store close:", err)
	}
	fmt.Fprintln(os.Stderr, "triqd: drained, bye")
	return nil
}

// openStore opens (or creates) the store, replays its WAL, and seeds it from
// -data when it is brand new. An existing store wins over -data: the seed
// file reflects the world before any acknowledged mutations.
func openStore(cfg config, sync repro.StoreSyncPolicy, m *mat.Materializer, o *obs.Obs) (*repro.Store, error) {
	scfg := repro.StoreConfig{
		Dir:             cfg.walDir,
		Sync:            sync,
		SyncInterval:    cfg.walSyncInterval,
		CheckpointEvery: cfg.checkpointEvery,
		CheckpointBytes: cfg.checkpointBytes,
		Obs:             o,
		TimelineCap:     cfg.timelineCap,
	}
	if m != nil {
		scfg.OnCommit = m.OnCommit
	}
	st, rec, err := repro.OpenStore(scfg)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		fmt.Fprintf(os.Stderr,
			"triqd: recovered epoch %d (snapshot %d, %d WAL records replayed, %d stale skipped) in %s\n",
			rec.Epoch, rec.SnapshotEpoch, rec.Records, rec.Skipped, rec.Elapsed)
		if rec.DamagedTail {
			fmt.Fprintf(os.Stderr, "triqd: torn or corrupt WAL tail truncated at byte %d\n", rec.TruncatedAt)
		}
	}
	empty := st.Current().Seq == 0 && st.Current().Graph.Len() == 0
	switch {
	case cfg.replicaOf != "":
		// A replica's state comes from the primary's stream (snapshot or
		// records), never from a local seed file — seeding would fork the
		// epoch numbering.
		if cfg.data != "" {
			fmt.Fprintf(os.Stderr, "triqd: replica mode; -data %s ignored (state comes from %s)\n",
				cfg.data, cfg.replicaOf)
		}
	case cfg.data != "" && empty:
		g, err := loadGraph(cfg)
		if err != nil {
			st.Close()
			return nil, err
		}
		if _, err := st.Bootstrap(g); err != nil {
			st.Close()
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "triqd: store seeded from %s (%d triples)\n", cfg.data, g.Len())
	case cfg.data != "" && !empty:
		fmt.Fprintf(os.Stderr, "triqd: store already populated; -data %s ignored\n", cfg.data)
	}
	return st, nil
}
