package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

const testData = `
TheAirline partOf transportService .
A311 partOf TheAirline .
Oxford A311 London .
`

const testProgram = `
	triple(?X, partOf, transportService) -> ts(?X).
	triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
	ts(?X) -> query(?X).
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// startTriqd runs the server loop on a loopback listener and returns its
// base URL, the fake signal channel, and the run error channel.
func startTriqd(t *testing.T, cfg config) (string, chan os.Signal, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- run(context.Background(), cfg, ln, stop) }()
	return "http://" + ln.Addr().String(), stop, done
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTriqdServeQueryDrain is the full lifecycle smoke test: start, wait
// ready, query, signal, assert a clean drain.
func TestTriqdServeQueryDrain(t *testing.T) {
	cfg := config{
		data:           writeFile(t, "g.nt", testData),
		concurrency:    2,
		queue:          4,
		queueTimeout:   time.Second,
		defaultTimeout: 5 * time.Second,
		maxTimeout:     10 * time.Second,
		drainTimeout:   5 * time.Second,
		retries:        3,
	}
	base, stop, done := startTriqd(t, cfg)
	waitReady(t, base)

	body, _ := json.Marshal(map[string]string{"program": testProgram})
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d, body %s", resp.StatusCode, raw)
	}
	var qr struct {
		Rows []string `json:"rows"`
	}
	if err := json.Unmarshal(raw, &qr); err != nil || len(qr.Rows) != 2 {
		t.Fatalf("rows = %v (err %v), want 2", qr.Rows, err)
	}

	// SPARQL endpoint over the same graph.
	body, _ = json.Marshal(map[string]string{"query": "SELECT ?x WHERE { ?x partOf TheAirline }"})
	resp, err = http.Post(base+"/sparql", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sparql status = %d", resp.StatusCode)
	}

	// Graceful drain on signal: run returns nil within the drain budget.
	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want clean exit", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete in time")
	}
	// The listener is really closed.
	if resp, err := http.Get(base + "/healthz"); err == nil {
		resp.Body.Close()
		t.Fatal("server still answering after drain")
	}
}

func TestTriqdRequiresData(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), config{}, ln, make(chan os.Signal)); err == nil {
		t.Fatal("want an error without -data")
	}
	badPath := config{data: filepath.Join(t.TempDir(), "missing.nt")}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), badPath, ln2, make(chan os.Signal)); err == nil {
		t.Fatal("want an error for a missing data file")
	}
}

// TestTriqdContextStop checks the ctx-driven shutdown path used when triqd
// is embedded (and by this test harness).
func TestTriqdContextStop(t *testing.T) {
	cfg := config{
		data:         writeFile(t, "g.nt", testData),
		drainTimeout: 2 * time.Second,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, ln, make(chan os.Signal)) }()
	waitReady(t, "http://"+ln.Addr().String())
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ctx cancel did not stop the server")
	}
}

// TestTriqdOntologyFlag boots with an ontology merged into the data.
func TestTriqdOntologyFlag(t *testing.T) {
	cfg := config{
		data:         writeFile(t, "g.nt", "rex rdf:type dog .\n"),
		ontology:     writeFile(t, "o.owl", "SubClassOf(dog, animal)\n"),
		drainTimeout: 2 * time.Second,
	}
	base, stop, done := startTriqd(t, cfg)
	waitReady(t, base)
	body, _ := json.Marshal(map[string]string{
		"query":  "SELECT ?x WHERE { ?x rdf:type animal }",
		"regime": "active-domain",
	})
	resp, err := http.Post(base+"/sparql", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var qr struct {
		Rows []string `json:"rows"`
	}
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 {
		t.Fatalf("rows = %v, want rex entailed as an animal", qr.Rows)
	}
	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestTriqdDurableWritePath is the persistence lifecycle: boot seeds the
// store from -data, a mutation commits, a clean restart against the same
// -wal-dir recovers the mutated state (and ignores -data), and the answers
// include the inserted triple.
func TestTriqdDurableWritePath(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "store")
	cfg := config{
		data:         writeFile(t, "g.nt", testData),
		walDir:       walDir,
		drainTimeout: 5 * time.Second,
	}

	base, stop, done := startTriqd(t, cfg)
	waitReady(t, base)
	body, _ := json.Marshal(map[string]string{"triples": "Shuttle partOf TheAirline .\n"})
	resp, err := http.Post(base+"/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert = %d, body %s", resp.StatusCode, raw)
	}
	var mr struct {
		Epoch   uint64 `json:"epoch"`
		Durable bool   `json:"durable"`
	}
	if err := json.Unmarshal(raw, &mr); err != nil || !mr.Durable || mr.Epoch == 0 {
		t.Fatalf("insert response %s (err %v), want durable with an epoch", raw, err)
	}
	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Second boot: same wal-dir, a decoy -data that must be ignored.
	cfg.data = writeFile(t, "decoy.nt", "only decoy data .\n")
	base, stop, done = startTriqd(t, cfg)
	waitReady(t, base)
	body, _ = json.Marshal(map[string]string{"program": testProgram})
	resp, err = http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var qr struct {
		Rows []string `json:"rows"`
	}
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 3 {
		t.Fatalf("rows after restart = %v, want 3 (Shuttle persisted)", qr.Rows)
	}
	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestTriqdInMemoryWrites checks mutations work without -wal-dir (volatile
// store, durable=false acknowledgements).
func TestTriqdInMemoryWrites(t *testing.T) {
	cfg := config{
		data:         writeFile(t, "g.nt", testData),
		drainTimeout: 2 * time.Second,
	}
	base, stop, done := startTriqd(t, cfg)
	waitReady(t, base)
	body, _ := json.Marshal(map[string]string{"triples": "x partOf transportService .\n"})
	resp, err := http.Post(base+"/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert = %d, body %s", resp.StatusCode, raw)
	}
	var mr struct {
		Durable bool `json:"durable"`
	}
	if err := json.Unmarshal(raw, &mr); err != nil || mr.Durable {
		t.Fatalf("insert response %s (err %v), want durable=false without a WAL", raw, err)
	}
	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// waitReplica polls /readyz until the process reports a live replica state.
func waitReplica(t *testing.T, base string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			var m map[string]any
			dec := json.NewDecoder(resp.Body)
			derr := dec.Decode(&m)
			resp.Body.Close()
			if derr == nil && resp.StatusCode == http.StatusOK && m["state"] == "replica" {
				return m
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never reached the streaming state")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTriqdReplicationLifecycle boots a primary/replica pair in-process:
// the replica streams the primary's state, serves min-epoch reads with
// read-your-writes semantics, refuses local writes toward the primary, and
// promotes over the API into a writable primary.
func TestTriqdReplicationLifecycle(t *testing.T) {
	pcfg := config{
		data:          writeFile(t, "g.nt", testData),
		walDir:        filepath.Join(t.TempDir(), "primary"),
		drainTimeout:  5 * time.Second,
		stalenessWait: 2 * time.Second,
	}
	pbase, pstop, pdone := startTriqd(t, pcfg)
	waitReady(t, pbase)

	rcfg := config{
		replicaOf:     pbase,
		walDir:        filepath.Join(t.TempDir(), "replica"),
		data:          writeFile(t, "decoy.nt", "decoy p o .\n"), // must be ignored
		drainTimeout:  5 * time.Second,
		stalenessWait: 2 * time.Second,
	}
	rbase, rstop, rdone := startTriqd(t, rcfg)
	m := waitReplica(t, rbase)
	if m["primary"] != pbase {
		t.Fatalf("readyz primary = %v, want %s", m["primary"], pbase)
	}

	// Write to the primary; the ack's epoch is the read-your-writes token on
	// the replica.
	body, _ := json.Marshal(map[string]string{"triples": "Shuttle partOf TheAirline .\n"})
	resp, err := http.Post(pbase+"/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary insert = %d, body %s", resp.StatusCode, raw)
	}
	var mr struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(raw, &mr); err != nil {
		t.Fatal(err)
	}

	qbody, _ := json.Marshal(map[string]any{"program": testProgram, "min_epoch": mr.Epoch})
	resp, err = http.Post(rbase+"/query", "application/json", bytes.NewReader(qbody))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	epochHdr := resp.Header.Get("X-Triq-Epoch")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replica min-epoch read = %d, body %s", resp.StatusCode, raw)
	}
	var qr struct {
		Rows  []string `json:"rows"`
		Epoch uint64   `json:"epoch"`
	}
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 3 || qr.Epoch < mr.Epoch || epochHdr == "" {
		t.Fatalf("replica read rows=%v epoch=%d hdr=%q, want the write visible at >= %d",
			qr.Rows, qr.Epoch, epochHdr, mr.Epoch)
	}

	// Writes to the replica are refused toward the primary.
	resp, err = http.Post(rbase+"/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	primaryHdr := resp.Header.Get("X-Triq-Primary")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || primaryHdr != pbase {
		t.Fatalf("replica insert = %d X-Triq-Primary=%q, want 503 toward %s",
			resp.StatusCode, primaryHdr, pbase)
	}

	// The primary dies; the API promotes the replica into a writable primary.
	pstop <- os.Interrupt
	if err := <-pdone; err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(rbase+"/repl/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote = %d", resp.StatusCode)
	}
	resp, err = http.Post(rbase+"/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-promote insert = %d, body %s", resp.StatusCode, raw)
	}

	rstop <- os.Interrupt
	if err := <-rdone; err != nil {
		t.Fatal(err)
	}
}

// TestTriqdReplicaFlagValidation: promote/proxy flags demand -replica-of,
// and -replica-of alone is a valid boot mode.
func TestTriqdReplicaFlagValidation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), config{promoteOnLoss: true}, ln, make(chan os.Signal)); err == nil {
		t.Fatal("want an error for -promote-on-loss without -replica-of")
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), config{data: "x.nt", proxyWrites: true}, ln2, make(chan os.Signal)); err == nil {
		t.Fatal("want an error for -proxy-writes without -replica-of")
	}
}
