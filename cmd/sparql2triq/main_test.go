package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSparql2TriqTranslate(t *testing.T) {
	q := writeFile(t, "q.rq", `SELECT ?X WHERE { ?Y is_author_of ?Z . ?Y name ?X }`)
	for _, regime := range []string{"plain", "u", "all"} {
		if err := run(q, regime, ""); err != nil {
			t.Fatalf("regime %s: %v", regime, err)
		}
	}
}

func TestSparql2TriqEvaluate(t *testing.T) {
	q := writeFile(t, "q.rq", `SELECT ?X WHERE { ?Y is_author_of ?Z . ?Y name ?X }`)
	g := writeFile(t, "g.nt", `
		dbUllman is_author_of tcb .
		dbUllman name jeff .
	`)
	if err := run(q, "plain", g); err != nil {
		t.Fatal(err)
	}
}

func TestSparql2TriqErrors(t *testing.T) {
	q := writeFile(t, "q.rq", `SELECT ?X WHERE { ?X p ?Y }`)
	bad := writeFile(t, "bad.rq", `SELECT`)
	cases := []func() error{
		func() error { return run("", "plain", "") },
		func() error { return run(q, "klingon", "") },
		func() error { return run(q+".nope", "plain", "") },
		func() error { return run(bad, "plain", "") },
		func() error { return run(q, "plain", "/nope.nt") },
	}
	for i, f := range cases {
		if f() == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
