package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSparql2TriqTranslate(t *testing.T) {
	q := writeFile(t, "q.rq", `SELECT ?X WHERE { ?Y is_author_of ?Z . ?Y name ?X }`)
	for _, regime := range []string{"plain", "u", "all"} {
		if err := run(context.Background(), config{query: q, regime: regime}); err != nil {
			t.Fatalf("regime %s: %v", regime, err)
		}
	}
}

func TestSparql2TriqEvaluate(t *testing.T) {
	q := writeFile(t, "q.rq", `SELECT ?X WHERE { ?Y is_author_of ?Z . ?Y name ?X }`)
	g := writeFile(t, "g.nt", `
		dbUllman is_author_of tcb .
		dbUllman name jeff .
	`)
	if err := run(context.Background(), config{query: q, regime: "plain", eval: g}); err != nil {
		t.Fatal(err)
	}
}

// TestSparql2TriqTraceAndMetrics checks that -trace produces a valid JSONL
// trace containing the translation compile spans, per-operator spans, and the
// chase spans from the evaluation.
func TestSparql2TriqTraceAndMetrics(t *testing.T) {
	q := writeFile(t, "q.rq", `SELECT ?X WHERE { ?Y is_author_of ?Z . ?Y name ?X }`)
	g := writeFile(t, "g.nt", `
		dbUllman is_author_of tcb .
		dbUllman name jeff .
	`)
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run(context.Background(), config{query: q, regime: "plain", eval: g, trace: trace, metrics: true}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ParseTrace(raw)
	if err != nil {
		t.Fatalf("invalid JSONL: %v", err)
	}
	kinds := map[string]bool{}
	for _, k := range obs.TraceKinds(recs) {
		kinds[k] = true
	}
	for _, k := range []string{"translate.compile", "translate.op", "translate.load_db", "translate.decode", "chase.run", "chase.round", "chase.rule", "triq.eval"} {
		if !kinds[k] {
			t.Errorf("missing span kind %q (got %v)", k, obs.TraceKinds(recs))
		}
	}
}

func TestSparql2TriqErrors(t *testing.T) {
	q := writeFile(t, "q.rq", `SELECT ?X WHERE { ?X p ?Y }`)
	bad := writeFile(t, "bad.rq", `SELECT`)
	cases := []config{
		{regime: "plain"},
		{query: q, regime: "klingon"},
		{query: q + ".nope", regime: "plain"},
		{query: bad, regime: "plain"},
		{query: q, regime: "plain", eval: "/nope.nt"},
		{query: q, regime: "plain", trace: filepath.Join(q, "nope", "t.jsonl")},
	}
	for i, cfg := range cases {
		if err := run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
