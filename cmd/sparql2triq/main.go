// Command sparql2triq translates a SPARQL query into a TriQ query following
// Sections 5.1–5.3 of the paper and prints the resulting Datalog program.
//
// Usage:
//
//	sparql2triq -query query.rq [-regime plain|u|all] [-eval graph.nt]
//
// With -eval the translated query is additionally evaluated over the given
// graph and the solution mappings are printed.
//
// Observability (see README "Observability"): -metrics prints the per-rule
// chase breakdown and the metrics registry to stderr, -trace streams the
// JSONL span trace (translation and evaluation spans) to a file, and -pprof
// serves net/http/pprof.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"repro/internal/chase"
	"repro/internal/limits"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/translate"
	"repro/internal/triq"
)

// Exit codes of the resource-governance contract (see README "Resource
// limits & cancellation"): 124 mirrors timeout(1).
const (
	exitUsage    = 1   // flag/parse/IO errors
	exitInternal = 2   // recovered engine panic
	exitBudget   = 3   // fact/round budget tripped
	exitTimeout  = 124 // -timeout deadline exceeded
)

// config collects the CLI flags.
type config struct {
	query     string        // SPARQL query file ("-" = stdin)
	regime    string        // plain | u | all
	eval      string        // N-Triples graph to evaluate over ("" = translate only)
	timeout   time.Duration // wall-clock deadline for -eval (0 = none)
	maxFacts  int           // chase fact budget (0 = none)
	maxRounds int           // chase round budget (0 = none)
	trace     string        // JSONL span trace file ("" = off)
	explain   bool          // print the per-query EXPLAIN report to stderr
	metrics   bool          // print metrics summary to stderr
	pprof     string        // pprof listen address ("" = off)
}

func main() {
	var cfg config
	flag.StringVar(&cfg.query, "query", "", "SPARQL query file (required; '-' for stdin)")
	flag.StringVar(&cfg.regime, "regime", "plain", "semantics: plain | u | all")
	flag.StringVar(&cfg.eval, "eval", "", "optionally evaluate over this N-Triples graph")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "wall-clock evaluation deadline, e.g. 30s (0 = none; exit 124 on expiry)")
	flag.IntVar(&cfg.maxFacts, "max-facts", 0, "abort the chase once the instance holds this many facts (0 = unlimited; partial mappings + exit 3)")
	flag.IntVar(&cfg.maxRounds, "max-rounds", 0, "abort the chase after this many rounds per stratum (0 = unlimited; partial mappings + exit 3)")
	flag.StringVar(&cfg.trace, "trace", "", "write a JSONL span trace to this file")
	flag.BoolVar(&cfg.explain, "explain", false, "with -eval: print the EXPLAIN report (Datalog rules attributed to SPARQL operators, per-rule chase stats, stage times) to stderr")
	flag.BoolVar(&cfg.metrics, "metrics", false, "print the per-rule chase breakdown and metrics registry to stderr")
	flag.StringVar(&cfg.pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("sparql2triq"))
		return
	}
	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "sparql2triq:", err)
		if tr, ok := limits.TruncationOf(err); ok {
			fmt.Fprint(os.Stderr, tr.String())
		}
		os.Exit(exitCode(err))
	}
}

// exitCode maps the error taxonomy onto the exit-code contract.
func exitCode(err error) int {
	switch {
	case errors.Is(err, limits.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
		return exitTimeout
	case limits.IsBudget(err):
		return exitBudget
	case errors.Is(err, limits.ErrInternal):
		return exitInternal
	}
	return exitUsage
}

// setupObs builds the observability handle from the trace/metrics flags; the
// closer flushes and closes the trace file. Both flags off → nil handle.
func setupObs(cfg config) (*obs.Obs, func() error, error) {
	if cfg.trace == "" && !cfg.metrics {
		return nil, func() error { return nil }, nil
	}
	if cfg.trace == "" {
		return obs.New(), func() error { return nil }, nil
	}
	f, err := os.Create(cfg.trace)
	if err != nil {
		return nil, nil, err
	}
	o := obs.NewWithSink(f)
	return o, func() error {
		if err := o.SinkErr(); err != nil {
			f.Close()
			return fmt.Errorf("writing trace: %w", err)
		}
		return f.Close()
	}, nil
}

func run(ctx context.Context, cfg config) (err error) {
	// One pathological query must not take down the process with a raw
	// panic: recover it into a typed ErrInternal (exit 2).
	defer limits.Recover(&err)
	if cfg.query == "" {
		return fmt.Errorf("-query is required")
	}
	if cfg.pprof != "" {
		ln, err := net.Listen("tcp", cfg.pprof)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "pprof: listening on http://%s/debug/pprof/\n", ln.Addr())
		go http.Serve(ln, nil) // pprof handlers live on http.DefaultServeMux
	}
	o, closeObs, err := setupObs(cfg)
	if err != nil {
		return err
	}
	if cfg.explain && o == nil {
		// EXPLAIN needs a registry even when -trace/-metrics are off.
		o = obs.New()
	}
	err = translateAndEval(ctx, cfg, o)
	if cerr := closeObs(); err == nil {
		err = cerr
	}
	return err
}

func translateAndEval(ctx context.Context, cfg config, o *obs.Obs) error {
	var src []byte
	var err error
	if cfg.query == "-" {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 4096)
		for {
			n, rerr := os.Stdin.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if rerr != nil {
				break
			}
		}
		src = buf
	} else {
		src, err = os.ReadFile(cfg.query)
		if err != nil {
			return err
		}
	}
	q, err := sparql.ParseQuery(string(src))
	if err != nil {
		return err
	}
	var regime translate.Regime
	switch strings.ToLower(cfg.regime) {
	case "plain":
		regime = translate.Plain
	case "u":
		regime = translate.ActiveDomain
	case "all":
		regime = translate.All
	default:
		return fmt.Errorf("unknown regime %q (want plain, u, or all)", cfg.regime)
	}
	start := time.Now()
	tr, err := translate.Traced(q.Pattern(), regime, o)
	if err != nil {
		return err
	}
	fmt.Printf("%% SPARQL pattern: %s\n", q.Pattern())
	fmt.Printf("%% regime: %s\n", regime)
	fmt.Printf("%% answer predicate: %s(%s)  (⋆ marks unbound positions)\n",
		translate.AnswerPred, strings.Join(tr.Vars, ", "))
	fmt.Print(tr.Query.Program.String())

	if cfg.eval == "" {
		if cfg.metrics {
			fmt.Fprint(os.Stderr, o.Summary())
		}
		return nil
	}
	f, err := os.Open(cfg.eval)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := rdf.ParseNTriples(f)
	if err != nil {
		return err
	}
	opts := triq.Options{Chase: chase.Options{
		MaxDepth:  16,
		MaxFacts:  cfg.maxFacts,
		MaxRounds: cfg.maxRounds,
		Obs:       o,
	}}
	ms, res, err := tr.EvaluateFullCtx(ctx, g, opts)
	if err != nil {
		return err
	}
	if cfg.explain {
		rep := triq.BuildExplain(res, o.Registry(), time.Since(start))
		rep.Kind = "sparql"
		rep.Regime = regime.String()
		fmt.Fprint(os.Stderr, rep.String())
	}
	if cfg.metrics {
		fmt.Fprint(os.Stderr, res.Stats.String())
		fmt.Fprint(os.Stderr, o.Summary())
	}
	if res.Answers != nil && res.Answers.Inconsistent {
		fmt.Println("\n% evaluation: ⊤ (inconsistent)")
		return nil
	}
	fmt.Printf("\n%% evaluation over %s: %d mappings\n", cfg.eval, ms.Len())
	fmt.Println(ms.String())
	if ms.Incomplete {
		// The partial mappings above are sound; signal the truncation on
		// stderr and through the exit code (3).
		return ms.Truncation.Err()
	}
	return nil
}
