// Command sparql2triq translates a SPARQL query into a TriQ query following
// Sections 5.1–5.3 of the paper and prints the resulting Datalog program.
//
// Usage:
//
//	sparql2triq -query query.rq [-regime plain|u|all] [-eval graph.nt]
//
// With -eval the translated query is additionally evaluated over the given
// graph and the solution mappings are printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/chase"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/translate"
	"repro/internal/triq"
)

func main() {
	var (
		queryPath  = flag.String("query", "", "SPARQL query file (required; '-' for stdin)")
		regimeName = flag.String("regime", "plain", "semantics: plain | u | all")
		evalPath   = flag.String("eval", "", "optionally evaluate over this N-Triples graph")
	)
	flag.Parse()
	if err := run(*queryPath, *regimeName, *evalPath); err != nil {
		fmt.Fprintln(os.Stderr, "sparql2triq:", err)
		os.Exit(1)
	}
}

func run(queryPath, regimeName, evalPath string) error {
	if queryPath == "" {
		return fmt.Errorf("-query is required")
	}
	var src []byte
	var err error
	if queryPath == "-" {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 4096)
		for {
			n, rerr := os.Stdin.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if rerr != nil {
				break
			}
		}
		src = buf
	} else {
		src, err = os.ReadFile(queryPath)
		if err != nil {
			return err
		}
	}
	q, err := sparql.ParseQuery(string(src))
	if err != nil {
		return err
	}
	var regime translate.Regime
	switch strings.ToLower(regimeName) {
	case "plain":
		regime = translate.Plain
	case "u":
		regime = translate.ActiveDomain
	case "all":
		regime = translate.All
	default:
		return fmt.Errorf("unknown regime %q (want plain, u, or all)", regimeName)
	}
	tr, err := translate.Translate(q.Pattern(), regime)
	if err != nil {
		return err
	}
	fmt.Printf("%% SPARQL pattern: %s\n", q.Pattern())
	fmt.Printf("%% regime: %s\n", regime)
	fmt.Printf("%% answer predicate: %s(%s)  (⋆ marks unbound positions)\n",
		translate.AnswerPred, strings.Join(tr.Vars, ", "))
	fmt.Print(tr.Query.Program.String())

	if evalPath == "" {
		return nil
	}
	f, err := os.Open(evalPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := rdf.ParseNTriples(f)
	if err != nil {
		return err
	}
	ms, inconsistent, err := tr.Evaluate(g, triq.Options{Chase: chase.Options{MaxDepth: 16}})
	if err != nil {
		return err
	}
	if inconsistent {
		fmt.Println("\n% evaluation: ⊤ (inconsistent)")
		return nil
	}
	fmt.Printf("\n%% evaluation over %s: %d mappings\n", evalPath, ms.Len())
	fmt.Println(ms.String())
	return nil
}
