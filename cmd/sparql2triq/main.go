// Command sparql2triq translates a SPARQL query into a TriQ query following
// Sections 5.1–5.3 of the paper and prints the resulting Datalog program.
//
// Usage:
//
//	sparql2triq -query query.rq [-regime plain|u|all] [-eval graph.nt]
//
// With -eval the translated query is additionally evaluated over the given
// graph and the solution mappings are printed.
//
// Observability (see README "Observability"): -metrics prints the per-rule
// chase breakdown and the metrics registry to stderr, -trace streams the
// JSONL span trace (translation and evaluation spans) to a file, and -pprof
// serves net/http/pprof.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"repro/internal/chase"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/translate"
	"repro/internal/triq"
)

// config collects the CLI flags.
type config struct {
	query   string // SPARQL query file ("-" = stdin)
	regime  string // plain | u | all
	eval    string // N-Triples graph to evaluate over ("" = translate only)
	trace   string // JSONL span trace file ("" = off)
	metrics bool   // print metrics summary to stderr
	pprof   string // pprof listen address ("" = off)
}

func main() {
	var cfg config
	flag.StringVar(&cfg.query, "query", "", "SPARQL query file (required; '-' for stdin)")
	flag.StringVar(&cfg.regime, "regime", "plain", "semantics: plain | u | all")
	flag.StringVar(&cfg.eval, "eval", "", "optionally evaluate over this N-Triples graph")
	flag.StringVar(&cfg.trace, "trace", "", "write a JSONL span trace to this file")
	flag.BoolVar(&cfg.metrics, "metrics", false, "print the per-rule chase breakdown and metrics registry to stderr")
	flag.StringVar(&cfg.pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "sparql2triq:", err)
		os.Exit(1)
	}
}

// setupObs builds the observability handle from the trace/metrics flags; the
// closer flushes and closes the trace file. Both flags off → nil handle.
func setupObs(cfg config) (*obs.Obs, func() error, error) {
	if cfg.trace == "" && !cfg.metrics {
		return nil, func() error { return nil }, nil
	}
	if cfg.trace == "" {
		return obs.New(), func() error { return nil }, nil
	}
	f, err := os.Create(cfg.trace)
	if err != nil {
		return nil, nil, err
	}
	o := obs.NewWithSink(f)
	return o, func() error {
		if err := o.SinkErr(); err != nil {
			f.Close()
			return fmt.Errorf("writing trace: %w", err)
		}
		return f.Close()
	}, nil
}

func run(cfg config) error {
	if cfg.query == "" {
		return fmt.Errorf("-query is required")
	}
	if cfg.pprof != "" {
		ln, err := net.Listen("tcp", cfg.pprof)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "pprof: listening on http://%s/debug/pprof/\n", ln.Addr())
		go http.Serve(ln, nil) // pprof handlers live on http.DefaultServeMux
	}
	o, closeObs, err := setupObs(cfg)
	if err != nil {
		return err
	}
	err = translateAndEval(cfg, o)
	if cerr := closeObs(); err == nil {
		err = cerr
	}
	return err
}

func translateAndEval(cfg config, o *obs.Obs) error {
	var src []byte
	var err error
	if cfg.query == "-" {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 4096)
		for {
			n, rerr := os.Stdin.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if rerr != nil {
				break
			}
		}
		src = buf
	} else {
		src, err = os.ReadFile(cfg.query)
		if err != nil {
			return err
		}
	}
	q, err := sparql.ParseQuery(string(src))
	if err != nil {
		return err
	}
	var regime translate.Regime
	switch strings.ToLower(cfg.regime) {
	case "plain":
		regime = translate.Plain
	case "u":
		regime = translate.ActiveDomain
	case "all":
		regime = translate.All
	default:
		return fmt.Errorf("unknown regime %q (want plain, u, or all)", cfg.regime)
	}
	tr, err := translate.Traced(q.Pattern(), regime, o)
	if err != nil {
		return err
	}
	fmt.Printf("%% SPARQL pattern: %s\n", q.Pattern())
	fmt.Printf("%% regime: %s\n", regime)
	fmt.Printf("%% answer predicate: %s(%s)  (⋆ marks unbound positions)\n",
		translate.AnswerPred, strings.Join(tr.Vars, ", "))
	fmt.Print(tr.Query.Program.String())

	if cfg.eval == "" {
		if cfg.metrics {
			fmt.Fprint(os.Stderr, o.Summary())
		}
		return nil
	}
	f, err := os.Open(cfg.eval)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := rdf.ParseNTriples(f)
	if err != nil {
		return err
	}
	ms, res, err := tr.EvaluateFull(g, triq.Options{Chase: chase.Options{MaxDepth: 16, Obs: o}})
	if err != nil {
		return err
	}
	if cfg.metrics {
		fmt.Fprint(os.Stderr, res.Stats.String())
		fmt.Fprint(os.Stderr, o.Summary())
	}
	if res.Answers != nil && res.Answers.Inconsistent {
		fmt.Println("\n% evaluation: ⊤ (inconsistent)")
		return nil
	}
	fmt.Printf("\n%% evaluation over %s: %d mappings\n", cfg.eval, ms.Len())
	fmt.Println(ms.String())
	return nil
}
