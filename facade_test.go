package repro

import (
	"strings"
	"testing"

	"repro/internal/chase"
)

func TestFacadePaths(t *testing.T) {
	g, _ := ParseGraph("a knows b .\nb knows c .")
	p, err := ParsePath("knows+")
	if err != nil {
		t.Fatal(err)
	}
	if got := EvalPath(g, p); len(got) != 3 {
		t.Errorf("knows+ = %v", got.Sorted())
	}
	if _, err := ParsePath("((("); err == nil {
		t.Error("bad path should error")
	}
}

func TestFacadeNRE(t *testing.T) {
	g, _ := ParseGraph("a p b .\np subPropertyOf r .")
	e, err := ParseNRE("next::[ next::subPropertyOf / self::r ]")
	if err != nil {
		t.Fatal(err)
	}
	if got := EvalNRE(g, e); len(got) != 1 {
		t.Errorf("NRE = %v", got.Sorted())
	}
}

func TestFacadeOntology(t *testing.T) {
	o, err := ParseOntology(`
		SubClassOf(dog, animal)
		ClassAssertion(dog, rex)
	`)
	if err != nil {
		t.Fatal(err)
	}
	g := o.ToGraph()
	q, _ := ParseSPARQL(`SELECT ?X WHERE { ?X rdf:type animal }`)
	ms, inconsistent, err := AskSPARQL(q, g, ActiveDomainRegime, Options{Chase: chase.Options{MaxDepth: 8}})
	if err != nil || inconsistent {
		t.Fatal(err, inconsistent)
	}
	if ms.Len() != 1 {
		t.Errorf("answers = %s", ms)
	}
	if OntologyProgram() == nil || RDFSProgram() == nil {
		t.Error("fixed programs missing")
	}
}

func TestFacadeRDFSRegime(t *testing.T) {
	g, _ := ParseGraph(`
		spaniel rdfs:subClassOf dog .
		rex rdf:type spaniel .
	`)
	q, _ := ParseSPARQL(`SELECT ?X WHERE { ?X rdf:type dog }`)
	ms, _, err := AskSPARQL(q, g, RDFSRegime, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ms.Len() != 1 {
		t.Errorf("answers = %s", ms)
	}
}

func TestFacadeConstructTranslation(t *testing.T) {
	g, _ := ParseGraph("u is_author_of tcb .\nu name jeff .")
	q, err := ParseSPARQL(`CONSTRUCT { ?X name_author ?Z } WHERE { ?Y is_author_of ?Z . ?Y name ?X }`)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := TranslateConstruct(q, PlainRegime)
	if err != nil {
		t.Fatal(err)
	}
	out, inconsistent, err := ct.Evaluate(g, Options{})
	if err != nil || inconsistent {
		t.Fatal(err, inconsistent)
	}
	direct, _ := Construct(q, g)
	if !Isomorphic(out, direct) {
		t.Errorf("construct mismatch:\n%s\nvs\n%s", out, direct)
	}
}

func TestFacadeAskExact(t *testing.T) {
	g, _ := ParseGraph("a e b .")
	q, err := ParseQuery(`
		triple(?X, e, ?Y) -> exists ?Z grows(?Y, ?Z).
		grows(?X, ?Z), triple(?W, e, ?X) -> out(?W).
	`, "out")
	if err != nil {
		t.Fatal(err)
	}
	res, err := AskExact(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || len(res.Tuples) != 1 || res.Tuples[0][0].Value != "a" {
		t.Errorf("AskExact = %+v", res)
	}
}

func TestFacadeTranslateSPARQL(t *testing.T) {
	q, _ := ParseSPARQL(`SELECT ?X WHERE { ?X p ?Y }`)
	tr, err := TranslateSPARQL(q.Pattern(), PlainRegime)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Vars) != 1 || tr.Vars[0] != "?X" {
		t.Errorf("Vars = %v", tr.Vars)
	}
}

func TestFacadeReadGraph(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("a p b ."))
	if err != nil || g.Len() != 1 {
		t.Fatal(err)
	}
}

func TestFacadeResultsRows(t *testing.T) {
	g, _ := ParseGraph("a p b .")
	q, _ := ParseQuery(`triple(?X, p, ?Y) -> out(?X, ?Y).`, "out")
	res, err := Ask(g, q, TriQLite10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 1 || rows[0] != "<a> <b>" {
		t.Errorf("Rows = %v", rows)
	}
}
