// Package repro is the public API of this reproduction of "Expressive
// Languages for Querying the Semantic Web" (Arenas, Gottlob, Pieris;
// PODS 2014 / TODS 2018). It exposes the paper's two query languages —
// TriQ 1.0 (weakly-frontier-guarded Datalog^{∃,¬s,⊥}) and TriQ-Lite 1.0
// (warded Datalog^{∃,¬sg,⊥}) — over RDF graphs, together with the SPARQL
// algebra, the SPARQL → Datalog translations with and without the OWL 2 QL
// core entailment regimes, OWL 2 QL core ontologies, and the ProofTree
// decision procedure.
//
// Quick start:
//
//	g, _ := repro.ParseGraph(`
//	    TheAirline partOf transportService .
//	    A311 partOf TheAirline .
//	    Oxford A311 London .
//	`)
//	q, _ := repro.ParseQuery(`
//	    triple(?X, partOf, transportService) -> ts(?X).
//	    triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
//	    ts(?T), triple(?X, ?T, ?Y) -> conn(?X, ?Y).
//	    ts(?T), triple(?X, ?T, ?Z), conn(?Z, ?Y) -> conn(?X, ?Y).
//	    conn(?X, ?Y) -> query(?X, ?Y).
//	`, "query")
//	res, _ := repro.Ask(g, q, repro.TriQLite10, repro.Options{})
//	for _, row := range res.Rows() { fmt.Println(row) }
//
// # Concurrency
//
// A Graph is immutable after parsing and safe for any number of concurrent
// readers, and every evaluation entry point (Ask, AskSPARQL, AskExact and
// their Ctx variants) builds its own working state per call — the chase
// clones the database, the translation materializes a fresh instance, and
// the exact enumeration builds a private prover. Many goroutines may
// therefore evaluate queries over one shared Graph (and shared parsed Query
// / SPARQLQuery / Translation values) without external locking; this is the
// contract the triqd server (cmd/triqd, internal/serve) relies on. The one
// stateful object is a Prover obtained from NewProver: it carries a memo
// table across calls, so its Prove methods serialize on an internal mutex —
// concurrent use is safe but not parallel; build one Prover per goroutine
// for parallel proof search.
package repro

import (
	"context"
	"io"
	"strings"
	"time"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/limits"
	"repro/internal/obs"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/translate"
	"repro/internal/triq"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Graph is an indexed RDF graph.
	Graph = rdf.Graph
	// Triple is an RDF triple.
	Triple = rdf.Triple
	// Term is an RDF term (URI, blank node, or literal).
	Term = rdf.Term
	// Program is a Datalog^{∃,¬s,⊥} program.
	Program = datalog.Program
	// Query is a Datalog^{∃,¬s,⊥} query (Π, p).
	Query = datalog.Query
	// Options configure evaluation.
	Options = triq.Options
	// Language selects TriQ 1.0, TriQ-Lite 1.0, or no syntactic check.
	Language = triq.Language
	// Ontology is an OWL 2 QL core ontology.
	Ontology = owl.Ontology
	// SPARQLQuery is a parsed SPARQL SELECT or CONSTRUCT query.
	SPARQLQuery = sparql.Query
	// Pattern is a SPARQL algebra graph pattern.
	Pattern = sparql.Pattern
	// MappingSet is a set of SPARQL solution mappings.
	MappingSet = sparql.MappingSet
	// Translation is a compiled SPARQL → Datalog query.
	Translation = translate.Translation
	// Regime selects plain SPARQL semantics or an entailment regime.
	Regime = translate.Regime
	// ProofNode is a node of a proof-tree (Definition 6.11).
	ProofNode = triq.ProofNode
	// Truncation reports which resource limit cut an evaluation short and
	// how far it got (see internal/limits).
	Truncation = limits.Truncation
	// FaultPlan is a deterministic fault-injection plan for tests and chaos
	// drills (see internal/limits); install one via Options.Chase.Faults.
	FaultPlan = limits.Plan
	// ExplainReport is the structured telemetry of one explained evaluation:
	// per-rule chase stats with operator provenance, worker shard balance,
	// prover memo behavior, and per-stage wall-time percentiles.
	ExplainReport = triq.ExplainReport
	// Progress is a lock-free live progress gauge for chase runs; install one
	// via Options.Chase.Progress and poll Snapshot from any goroutine (triqd
	// serves it at /debug/progress).
	Progress = chase.Progress
	// ProgressSnapshot is one consistent-enough reading of a Progress.
	ProgressSnapshot = chase.ProgressSnapshot
)

// Resource-governance error taxonomy. Every limit abort wraps exactly one of
// these sentinels, so callers can dispatch with errors.Is; the full report is
// recoverable with TruncationOf.
var (
	// ErrCanceled is returned when the context was canceled.
	ErrCanceled = limits.ErrCanceled
	// ErrDeadline is returned when the context deadline passed.
	ErrDeadline = limits.ErrDeadline
	// ErrFactBudget is returned when Options.Chase.MaxFacts tripped.
	ErrFactBudget = limits.ErrFactBudget
	// ErrRoundBudget is returned when Options.Chase.MaxRounds tripped.
	ErrRoundBudget = limits.ErrRoundBudget
	// ErrVisitBudget is returned when ProofOptions.MaxVisits tripped.
	ErrVisitBudget = limits.ErrVisitBudget
	// ErrInternal wraps a panic recovered at the public API boundary.
	ErrInternal = limits.ErrInternal
)

// TruncationOf extracts the Truncation report from a limit error.
func TruncationOf(err error) (*Truncation, bool) { return limits.TruncationOf(err) }

// IsBudget reports whether err is a resource-budget trip (facts, rounds, or
// visits) as opposed to cancellation, a deadline, or an internal error.
func IsBudget(err error) bool { return limits.IsBudget(err) }

// Languages of the paper.
const (
	// TriQ10 is TriQ 1.0 (Definition 4.2); Eval is ExpTime-complete in data
	// complexity.
	TriQ10 = triq.TriQ10
	// TriQLite10 is TriQ-Lite 1.0 (Definition 6.1); Eval is PTime-complete
	// in data complexity.
	TriQLite10 = triq.TriQLite10
	// Unrestricted skips the dialect check.
	Unrestricted = triq.Unrestricted
)

// Entailment regimes for SPARQL evaluation (Sections 5.1–5.3).
const (
	// PlainRegime is the standard SPARQL semantics.
	PlainRegime = translate.Plain
	// ActiveDomainRegime is the OWL 2 QL core direct semantics entailment
	// regime ⟦·⟧^U.
	ActiveDomainRegime = translate.ActiveDomain
	// AllRegime is ⟦·⟧^All, lifting the active-domain restriction.
	AllRegime = translate.All
)

// ParseGraph reads an RDF graph in (a pragmatic superset of) N-Triples.
func ParseGraph(src string) (*Graph, error) {
	return rdf.ParseNTriplesString(src)
}

// ReadGraph reads an RDF graph from a reader.
func ReadGraph(r io.Reader) (*Graph, error) { return rdf.ParseNTriples(r) }

// ParseProgram parses a Datalog^{∃,¬s,⊥} program in the rule syntax used
// throughout the paper (see internal/datalog.Parse).
func ParseProgram(src string) (*Program, error) { return datalog.Parse(src) }

// ParseQuery parses a program and pairs it with its output predicate.
func ParseQuery(src, output string) (Query, error) {
	return datalog.ParseQuery(src, output)
}

// Validate checks that a query belongs to the given language.
func Validate(q Query, lang Language) error { return triq.Validate(q, lang) }

// Results is the outcome of asking a query over a graph.
type Results struct {
	// Inconsistent is true when Q(G) = ⊤ (some constraint fired).
	Inconsistent bool
	// Tuples holds the answer tuples as decoded RDF terms.
	Tuples [][]Term
	// Exact reports whether the evaluation provably saturated (see
	// internal/chase.StableGround).
	Exact bool
	// Incomplete is true when a resource budget tripped and Tuples is the
	// sound partial answer set derived before the abort. For positive
	// programs every listed tuple is a certain answer; only completeness is
	// lost. Cancellation and deadlines never degrade — they return errors.
	Incomplete bool
	// Truncation reports which limit tripped; non-nil exactly when
	// Incomplete.
	Truncation *Truncation
}

// Rows renders the tuples as strings, one row per answer.
func (r *Results) Rows() []string {
	out := make([]string, 0, len(r.Tuples))
	for _, tup := range r.Tuples {
		parts := make([]string, len(tup))
		for i, t := range tup {
			parts[i] = t.String()
		}
		out = append(out, strings.Join(parts, " "))
	}
	return out
}

// Ask evaluates a TriQ query over an RDF graph: the graph is loaded as the
// database τ_db(G) over the predicate triple(·,·,·), the query program is
// validated against the language, and the answers are decoded as RDF terms.
func Ask(g *Graph, q Query, lang Language, opts Options) (*Results, error) {
	return AskCtx(context.Background(), g, q, lang, opts)
}

// AskCtx is Ask under a context. Cancellation and deadlines return typed
// errors (ErrCanceled, ErrDeadline); budget trips (MaxFacts, MaxRounds)
// degrade gracefully to a sound partial Results with Incomplete and
// Truncation set. Panics in the engine are recovered and returned as
// ErrInternal.
func AskCtx(ctx context.Context, g *Graph, q Query, lang Language, opts Options) (out *Results, err error) {
	defer limits.Recover(&err)
	// Warm-materialization fast path: when a materialization of this program
	// is pinned to opts.MatEpoch, answer from it without even loading the
	// graph into an instance. On a miss, EvalCtx still gets a chance to
	// build one (and answers by chase regardless).
	if res, ok := triq.ServeMaterialized(q, lang, opts); ok {
		return resultsOf(res), nil
	}
	db, err := chase.FromFacts(owl.GraphToDB(g))
	if err != nil {
		return nil, err
	}
	res, err := triq.EvalCtx(ctx, db, q, lang, opts)
	if err != nil {
		return nil, err
	}
	return resultsOf(res), nil
}

// resultsOf decodes a triq.Result into the facade Results.
func resultsOf(res *triq.Result) *Results {
	out := &Results{
		Inconsistent: res.Answers.Inconsistent,
		Exact:        res.Exact,
		Incomplete:   res.Incomplete,
		Truncation:   res.Truncation,
	}
	for _, tup := range res.Answers.Tuples {
		row := make([]Term, len(tup))
		for i, t := range tup {
			row[i] = translate.DecodeTerm(t.Name)
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out
}

// ParseSPARQL parses a SPARQL SELECT or CONSTRUCT query.
func ParseSPARQL(src string) (*SPARQLQuery, error) { return sparql.ParseQuery(src) }

// EvalSPARQL evaluates a SELECT query directly under the algebraic
// semantics ⟦·⟧_G of Section 3.1.
func EvalSPARQL(q *SPARQLQuery, g *Graph) (*MappingSet, error) { return q.Select(g) }

// EvalSPARQLCtx is EvalSPARQL under a context; cancellation and deadlines
// surface as ErrCanceled / ErrDeadline.
func EvalSPARQLCtx(ctx context.Context, q *SPARQLQuery, g *Graph) (ms *MappingSet, err error) {
	defer limits.Recover(&err)
	return q.SelectCtx(ctx, g)
}

// Construct evaluates a CONSTRUCT query, producing an RDF graph.
func Construct(q *SPARQLQuery, g *Graph) (*Graph, error) { return q.Construct(g) }

// TranslateSPARQL compiles a SPARQL pattern into a TriQ query following
// Sections 5.1–5.3: P_dat under PlainRegime, P^U_dat under
// ActiveDomainRegime, and P^All_dat under AllRegime. The regime variants are
// TriQ-Lite 1.0 queries (Corollaries 5.4, 6.2).
func TranslateSPARQL(p Pattern, regime Regime) (*Translation, error) {
	return translate.Translate(p, regime)
}

// AskSPARQL evaluates a SELECT query over a graph under the chosen regime by
// translating it to a TriQ query and running the Datalog machinery.
func AskSPARQL(q *SPARQLQuery, g *Graph, regime Regime, opts Options) (*MappingSet, bool, error) {
	return AskSPARQLCtx(context.Background(), q, g, regime, opts)
}

// AskSPARQLCtx is AskSPARQL under a context. Budget trips degrade to a
// sound partial MappingSet with ms.Incomplete and ms.Truncation set;
// cancellation and deadlines return typed errors; panics are recovered as
// ErrInternal.
func AskSPARQLCtx(ctx context.Context, q *SPARQLQuery, g *Graph, regime Regime, opts Options) (ms *MappingSet, exact bool, err error) {
	defer limits.Recover(&err)
	tr, err := translate.TracedCtx(ctx, q.Pattern(), regime, opts.Chase.Obs)
	if err != nil {
		return nil, false, err
	}
	return tr.EvaluateCtx(ctx, g, opts)
}

// AskSPARQLExact evaluates a SELECT query under the chosen regime with the
// provably-exact ProofTree procedure instead of the bottom-up chase: the
// translated query (TriQ-Lite 1.0 by Corollaries 5.4 and 6.2) is answered by
// enumerating the answer domain and certifying every mapping with a proof
// tree. Slower than AskSPARQL, but exact even when the chase is infinite.
func AskSPARQLExact(q *SPARQLQuery, g *Graph, regime Regime, opts Options) (*MappingSet, bool, error) {
	return AskSPARQLExactCtx(context.Background(), q, g, regime, opts)
}

// AskSPARQLExactCtx is AskSPARQLExact under a context. The boolean reports
// inconsistency (⊤). A visit-budget trip degrades to the proof-certified
// partial mapping set with ms.Incomplete set; cancellation and deadlines
// return typed errors; panics are recovered as ErrInternal.
func AskSPARQLExactCtx(ctx context.Context, q *SPARQLQuery, g *Graph, regime Regime, opts Options) (ms *MappingSet, inconsistent bool, err error) {
	defer limits.Recover(&err)
	tr, err := translate.TracedCtx(ctx, q.Pattern(), regime, opts.Chase.Obs)
	if err != nil {
		return nil, false, err
	}
	ms, res, err := tr.EvaluateExactFullCtx(ctx, g, opts)
	if err != nil {
		return nil, false, err
	}
	return ms, res.Answers != nil && res.Answers.Inconsistent, nil
}

// NewProver builds a ProofTree decision procedure (Section 6.3) for a
// positive warded program over the graph's triple database.
func NewProver(g *Graph, prog *Program) (*triq.Prover, error) {
	db, err := chase.FromFacts(owl.GraphToDB(g))
	if err != nil {
		return nil, err
	}
	return triq.NewProver(db, prog, triq.ProofOptions{})
}

// OntologyProgram returns the fixed program τ_owl2ql_core of Section 5.2.
func OntologyProgram() *Program { return owl.Program() }

// PathExpr is a SPARQL 1.1 property-path expression (the navigational
// baseline of the paper's motivation).
type PathExpr = sparql.PathExpr

// ParsePath parses a property-path expression such as "partOf+/^partOf".
func ParsePath(src string) (PathExpr, error) { return sparql.ParsePath(src) }

// EvalPath evaluates a property path over a graph, returning the connected
// (subject, object) pairs.
func EvalPath(g *Graph, p PathExpr) sparql.PairSet { return sparql.EvalPath(g, p) }

// ParseOntology reads an OWL 2 QL core ontology in functional-style syntax
// (Section 5.2), e.g. "SubClassOf(animal, ∃eats)".
func ParseOntology(src string) (*Ontology, error) { return owl.ParseOntology(src) }

// TranslateConstruct compiles a CONSTRUCT query into a triple-producing TriQ
// program (rule (3) of Section 2).
func TranslateConstruct(q *SPARQLQuery, regime Regime) (*translate.ConstructTranslation, error) {
	return translate.TranslateConstruct(q, regime)
}

// AskExact evaluates a TriQ-Lite 1.0 query with the provably-exact ProofTree
// enumeration (Section 6.3) instead of the fast bottom-up chase. Slower, but
// correct even on programs with an infinite chase, and every answer carries
// a proof.
func AskExact(g *Graph, q Query, opts Options) (*Results, error) {
	return AskExactCtx(context.Background(), g, q, opts)
}

// AskExactCtx is AskExact under a context. A visit-budget trip degrades to
// the proof-certified partial answer set with Incomplete set (and Exact
// cleared); cancellation and deadlines return typed errors; panics are
// recovered as ErrInternal.
func AskExactCtx(ctx context.Context, g *Graph, q Query, opts Options) (out *Results, err error) {
	defer limits.Recover(&err)
	db, err := chase.FromFacts(owl.GraphToDB(g))
	if err != nil {
		return nil, err
	}
	res, err := triq.EvalExactCtx(ctx, db, q, opts)
	if err != nil {
		return nil, err
	}
	return resultsOf(res), nil
}

// Explain is Ask with a report: the query is evaluated under a private
// metrics registry and the run is distilled into an ExplainReport (per-rule
// chase stats, worker balance, stage times). Answers are identical to Ask's.
func Explain(g *Graph, q Query, lang Language, opts Options) (*Results, *ExplainReport, error) {
	return ExplainCtx(context.Background(), g, q, lang, opts)
}

// ExplainCtx is Explain under a context. If opts.Chase.Obs was set, the
// per-query observations are folded back into it afterwards, so long-lived
// metrics still see the run.
func ExplainCtx(ctx context.Context, g *Graph, q Query, lang Language, opts Options) (out *Results, rep *ExplainReport, err error) {
	defer limits.Recover(&err)
	db, err := chase.FromFacts(owl.GraphToDB(g))
	if err != nil {
		return nil, nil, err
	}
	res, rep, err := triq.ExplainCtx(ctx, db, q, lang, opts)
	if err != nil {
		return nil, nil, err
	}
	return resultsOf(res), rep, nil
}

// ExplainExact is AskExact with a report; the report carries the ProofTree
// prover's memo metrics alongside the chase breakdown.
func ExplainExact(g *Graph, q Query, opts Options) (*Results, *ExplainReport, error) {
	return ExplainExactCtx(context.Background(), g, q, opts)
}

// ExplainExactCtx is ExplainExact under a context.
func ExplainExactCtx(ctx context.Context, g *Graph, q Query, opts Options) (out *Results, rep *ExplainReport, err error) {
	defer limits.Recover(&err)
	db, err := chase.FromFacts(owl.GraphToDB(g))
	if err != nil {
		return nil, nil, err
	}
	res, rep, err := triq.ExplainExactCtx(ctx, db, q, opts)
	if err != nil {
		return nil, nil, err
	}
	return resultsOf(res), rep, nil
}

// ExplainSPARQL is AskSPARQL with a report. Every compiled Datalog rule in
// the report carries the SPARQL operator that emitted it (BGP, AND, UNION,
// OPT, FILTER, SELECT, τ_out, EQ, ontology), and the stage table includes the
// translation and decode phases.
func ExplainSPARQL(q *SPARQLQuery, g *Graph, regime Regime, opts Options) (*MappingSet, *ExplainReport, error) {
	return ExplainSPARQLCtx(context.Background(), q, g, regime, opts)
}

// ExplainSPARQLCtx is ExplainSPARQL under a context. The evaluation runs
// with a fresh private metrics registry; if opts.Chase.Obs was set, the
// observations are folded back into it afterwards.
func ExplainSPARQLCtx(ctx context.Context, q *SPARQLQuery, g *Graph, regime Regime, opts Options) (ms *MappingSet, rep *ExplainReport, err error) {
	defer limits.Recover(&err)
	priv, orig := obs.New(), opts.Chase.Obs
	opts.Chase.Obs = priv
	start := time.Now()
	tr, err := translate.TracedCtx(ctx, q.Pattern(), regime, priv)
	if err != nil {
		return nil, nil, err
	}
	ms, res, err := tr.EvaluateFullCtx(ctx, g, opts)
	elapsed := time.Since(start)
	if orig != nil {
		orig.Registry().MergeFrom(priv.Registry())
	}
	if err != nil {
		return nil, nil, err
	}
	rep = triq.BuildExplain(res, priv.Registry(), elapsed)
	rep.Kind = "sparql"
	rep.Regime = regime.String()
	return ms, rep, nil
}

// ExplainSPARQLExact is AskSPARQLExact with a report; like ExplainExact, the
// report carries the prover's memo metrics alongside the chase breakdown.
func ExplainSPARQLExact(q *SPARQLQuery, g *Graph, regime Regime, opts Options) (*MappingSet, *ExplainReport, error) {
	return ExplainSPARQLExactCtx(context.Background(), q, g, regime, opts)
}

// ExplainSPARQLExactCtx is ExplainSPARQLExact under a context; the same
// private-registry fold-back contract as ExplainSPARQLCtx applies.
func ExplainSPARQLExactCtx(ctx context.Context, q *SPARQLQuery, g *Graph, regime Regime, opts Options) (ms *MappingSet, rep *ExplainReport, err error) {
	defer limits.Recover(&err)
	priv, orig := obs.New(), opts.Chase.Obs
	opts.Chase.Obs = priv
	start := time.Now()
	tr, err := translate.TracedCtx(ctx, q.Pattern(), regime, priv)
	if err != nil {
		return nil, nil, err
	}
	ms, res, err := tr.EvaluateExactFullCtx(ctx, g, opts)
	elapsed := time.Since(start)
	if orig != nil {
		orig.Registry().MergeFrom(priv.Registry())
	}
	if err != nil {
		return nil, nil, err
	}
	rep = triq.BuildExplain(res, priv.Registry(), elapsed)
	rep.Kind = "sparql-exact"
	rep.Regime = regime.String()
	return ms, rep, nil
}

// Isomorphic reports RDF graph isomorphism (equality up to blank renaming).
func Isomorphic(g, h *Graph) bool { return rdf.Isomorphic(g, h) }

// RDFSRegime evaluates basic graph patterns over the ρdf closure (the fixed
// RDFS rule library: subClassOf/subPropertyOf/domain/range reasoning).
const RDFSRegime = translate.RDFS

// NRE is an nSPARQL nested regular expression (reference [32] of the paper).
type NRE = sparql.NRE

// ParseNRE parses a nested regular expression such as
// "(next::[ (next::partOf)+ / self::transportService ])+".
func ParseNRE(src string) (NRE, error) { return sparql.ParseNRE(src) }

// EvalNRE evaluates a nested regular expression over a graph.
func EvalNRE(g *Graph, e NRE) sparql.PairSet { return sparql.EvalNRE(g, e) }

// RDFSProgram returns the fixed ρdf rule library.
func RDFSProgram() *Program { return owl.RDFSProgram() }

// The durable mutation path (internal/store): an epoch-versioned
// copy-on-write fact store with a write-ahead log, periodic snapshot
// checkpoints, and crash recovery. In-flight readers keep the immutable
// epoch graph they started with while writers commit new epochs.
type (
	// Store is the epoch-versioned fact store.
	Store = store.Store
	// StoreConfig configures OpenStore (directory, fsync policy, checkpoint
	// cadence). A zero Dir opens a volatile in-memory store.
	StoreConfig = store.Config
	// StoreEpoch is one immutable (sequence number, graph) version.
	StoreEpoch = store.Epoch
	// StoreRecovery reports what boot-time WAL replay found and repaired.
	StoreRecovery = store.Recovery
	// StoreSyncPolicy is the WAL fsync policy (SyncAlways / SyncInterval /
	// SyncNone).
	StoreSyncPolicy = store.SyncPolicy
)

// WAL fsync policies for StoreConfig.Sync.
const (
	// SyncAlways fsyncs every append before acknowledging (acknowledged
	// writes survive crashes).
	SyncAlways = store.SyncAlways
	// SyncInterval fsyncs on a background cadence (bounded loss window).
	SyncInterval = store.SyncInterval
	// SyncNone leaves flushing to the OS.
	SyncNone = store.SyncNone
)

// OpenStore opens (or creates) a durable store rooted at cfg.Dir, replaying
// the snapshot and WAL into the live epoch. The Recovery report says how
// much log was replayed and whether a torn or corrupt tail was truncated.
func OpenStore(cfg StoreConfig) (*Store, *StoreRecovery, error) { return store.Open(cfg) }

// ParseSyncPolicy maps the flag spelling ("always", "interval", "none") to a
// WAL fsync policy.
func ParseSyncPolicy(name string) (store.SyncPolicy, error) { return store.ParseSyncPolicy(name) }
