package repro_test

// One benchmark per reproduced paper artifact (see DESIGN.md's
// per-experiment index and EXPERIMENTS.md for the recorded results). The
// benchmarks exercise the same code paths as the cmd/triqbench harness but
// at testing.B granularity.

import (
	"fmt"
	"testing"

	"repro"

	"repro/internal/bench"
	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/owl"
	"repro/internal/pep"
	"repro/internal/sparql"
	"repro/internal/translate"
	"repro/internal/triq"
	"repro/internal/workload"
)

// BenchmarkT1_AxiomRDFRoundTrip measures the Table 1 mapping: axioms →
// RDF graph → axioms.
func BenchmarkT1_AxiomRDFRoundTrip(b *testing.B) {
	o := workload.University(2, 2, 2, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := o.ToGraph()
		if _, err := owl.FromGraph(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF1_ProofTree measures the ProofTree decision procedure on the
// Figure 1 instance.
func BenchmarkF1_ProofTree(b *testing.B) {
	db := chase.NewInstance(
		datalog.MustParseAtom("s(a, a, a)"),
		datalog.MustParseAtom("t(a)"),
	)
	prog := datalog.MustParse(`
		s(?X, ?Y, ?Z) -> exists ?W s(?X, ?Z, ?W).
		s(?X, ?Y, ?Z), s(?Y, ?Z, ?W) -> q(?X, ?Y).
		t(?X) -> exists ?Z p(?X, ?Z).
		p(?X, ?Y), q(?X, ?Z) -> r(?X, ?Y, ?Z).
		r(?X, ?Y, ?Z) -> p(?X, ?Z).
	`)
	goal := datalog.MustParseAtom("p(a, a)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pv, err := triq.NewProver(db, prog, triq.ProofOptions{})
		if err != nil {
			b.Fatal(err)
		}
		ok, err := pv.Proves(goal)
		if err != nil || !ok {
			b.Fatalf("proof failed: %v %v", ok, err)
		}
	}
}

// BenchmarkE1_CliqueTriQ measures the ExpTime-hard Example 4.3 query for
// growing n and k (Theorem 4.4): watch the per-op time explode with k.
func BenchmarkE1_CliqueTriQ(b *testing.B) {
	q := workload.CliqueQuery()
	for _, cfg := range []struct{ n, k int }{{5, 3}, {7, 3}, {5, 4}, {7, 4}} {
		nodes, edges := workload.RandomGraph(cfg.n, 0.5, int64(cfg.n*10+cfg.k))
		db := workload.CliqueDB(cfg.k, nodes, edges)
		b.Run(fmt.Sprintf("n=%d/k=%d", cfg.n, cfg.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := triq.Eval(db, q, triq.TriQ10, triq.Options{
					Chase: chase.Options{MaxFacts: 10_000_000},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2_TransportTriQLite measures the PTime TriQ-Lite transport
// query across database sizes (Theorem 6.7): per-op time grows polynomially.
func BenchmarkE2_TransportTriQLite(b *testing.B) {
	q := workload.TransportQuery()
	for _, lines := range []int{4, 8, 16} {
		db := workload.Transport(lines, 3, 6)
		b.Run(fmt.Sprintf("facts=%d", db.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := triq.Eval(db, q, triq.TriQLite10, triq.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3_TranslationVsDirect compares direct SPARQL algebra evaluation
// with evaluation through the Datalog translation (Theorem 5.2).
func BenchmarkE3_TranslationVsDirect(b *testing.B) {
	g := ParseGraphOrDie(benchGraph(80))
	p := sparql.Opt{
		L: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(sparql.Var("X"), sparql.IRI("name"), sparql.Var("N"))}},
		R: sparql.BGP{Triples: []sparql.TriplePattern{sparql.TP(sparql.Var("X"), sparql.IRI("phone"), sparql.Var("P"))}},
	}
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sparql.Eval(p, g)
		}
	})
	b.Run("translated", func(b *testing.B) {
		tr, err := translate.Translate(p, translate.Plain)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := tr.Evaluate(g, triq.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE4_EntailmentRegime measures SPARQL evaluation under the OWL 2 QL
// core direct semantics entailment regime (Theorem 5.3) across ontology
// sizes.
func BenchmarkE4_EntailmentRegime(b *testing.B) {
	p := sparql.BGP{Triples: []sparql.TriplePattern{
		sparql.TP(sparql.Var("X"), sparql.IRI("rdf:type"), sparql.IRI("person")),
	}}
	for _, depts := range []int{1, 2, 4} {
		o := workload.University(depts, 2, 3, false)
		g := o.ToGraph()
		b.Run(fmt.Sprintf("inds=%d", len(o.Individuals())), func(b *testing.B) {
			tr, err := translate.Translate(p, translate.ActiveDomain)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := tr.Evaluate(g, triq.Options{Chase: chase.Options{MaxDepth: 10}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5_UGCP measures the warded chase over the UGCP family O_n
// (Lemma 6.5).
func BenchmarkE5_UGCP(b *testing.B) {
	for _, n := range []int{4, 16} {
		db, err := chase.FromFacts(owl.GraphToDB(workload.UGCP(n).ToGraph()))
		if err != nil {
			b.Fatal(err)
		}
		prog := owl.Program().Positive()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := chase.Run(db, prog, chase.Options{MaxDepth: 6}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6_MinimalInteractionATM measures the Theorem 6.15 reduction:
// chase size doubles with each configuration-tree level.
func BenchmarkE6_MinimalInteractionATM(b *testing.B) {
	m := workload.ParityATM()
	prog := workload.ATMQuery().Program
	for _, bits := range [][]int{{1, 1}, {1, 0, 1}} {
		input := workload.ParityInput(bits)
		db := m.ATMDatabase(input)
		b.Run(fmt.Sprintf("tape=%d", len(input)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := chase.Run(db, prog, chase.Options{
					MaxDepth: len(input) + 4, MaxFacts: 10_000_000,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7_ProgramExpressivePower measures the Theorem 7.1 witness
// evaluation.
func BenchmarkE7_ProgramExpressivePower(b *testing.B) {
	w := pep.Theorem71()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h1, err := w.Holds(w.Lambda1)
		if err != nil || !h1 {
			b.Fatal("Λ1 must hold")
		}
		h2, err := w.Holds(w.Lambda2)
		if err != nil || h2 {
			b.Fatal("Λ2 must not hold")
		}
	}
}

// BenchmarkE8_FixedOntologyProgram measures per-query compile+evaluate cost
// with the fixed τ_owl2ql_core (Section 5.2 modularity).
func BenchmarkE8_FixedOntologyProgram(b *testing.B) {
	o := workload.University(2, 2, 2, false)
	g := o.ToGraph()
	p := sparql.BGP{Triples: []sparql.TriplePattern{
		sparql.TP(sparql.Var("X"), sparql.IRI("advises"), sparql.Var("Y")),
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := translate.Translate(p, translate.ActiveDomain)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := tr.Evaluate(g, triq.Options{Chase: chase.Options{MaxDepth: 8}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentHarness runs the full experiment suite once per
// iteration; it is the macro-benchmark matching cmd/triqbench.
func BenchmarkExperimentHarness(b *testing.B) {
	if testing.Short() {
		b.Skip("harness skipped in -short mode")
	}
	for i := 0; i < b.N; i++ {
		for _, tbl := range bench.RunAll() {
			if !tbl.OK {
				b.Fatalf("experiment %s failed", tbl.ID)
			}
		}
	}
}

// benchGraph builds the phone-book style graph used by E3.
func benchGraph(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += fmt.Sprintf("u%d name n%d .\n", i, i)
		if i%2 == 0 {
			s += fmt.Sprintf("u%d phone t%d .\n", i, i)
		}
	}
	return s
}

// ParseGraphOrDie is a test helper.
func ParseGraphOrDie(src string) *repro.Graph {
	g, err := repro.ParseGraph(src)
	if err != nil {
		panic(err)
	}
	return g
}
