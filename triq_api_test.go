package repro

import (
	"strings"
	"testing"

	"repro/internal/datalog"
)

const transportData = `
TheAirline partOf transportService .
BritishAirways partOf transportService .
Renfe partOf transportService .
A311 partOf TheAirline .
BA201 partOf BritishAirways .
R502 partOf Renfe .
Oxford A311 London .
London BA201 Madrid .
Madrid R502 Valladolid .
`

const transportProgram = `
triple(?X, partOf, transportService) -> ts(?X).
triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
ts(?T), triple(?X, ?T, ?Y) -> conn(?X, ?Y).
ts(?T), triple(?X, ?T, ?Z), conn(?Z, ?Y) -> conn(?X, ?Y).
conn(?X, ?Y) -> query(?X, ?Y).
`

func TestPublicAPIQuickstart(t *testing.T) {
	g, err := ParseGraph(transportData)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(transportProgram, "query")
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(q, TriQLite10); err != nil {
		t.Fatal(err)
	}
	res, err := Ask(g, q, TriQLite10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inconsistent {
		t.Fatal("unexpected ⊤")
	}
	if len(res.Tuples) != 6 {
		t.Errorf("answers = %v", res.Rows())
	}
	joined := strings.Join(res.Rows(), "\n")
	if !strings.Contains(joined, "<Oxford> <Valladolid>") {
		t.Errorf("missing Oxford→Valladolid:\n%s", joined)
	}
}

func TestPublicAPISPARQL(t *testing.T) {
	g, err := ParseGraph(`
		dbUllman is_author_of "The Complete Book" .
		dbUllman name "Jeffrey Ullman" .
	`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseSPARQL(`SELECT ?X WHERE { ?Y is_author_of ?Z . ?Y name ?X }`)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := EvalSPARQL(q, g)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Len() != 1 {
		t.Errorf("direct answers = %s", direct)
	}
	viaDatalog, inconsistent, err := AskSPARQL(q, g, PlainRegime, Options{})
	if err != nil || inconsistent {
		t.Fatal(err, inconsistent)
	}
	if !direct.Equal(viaDatalog) {
		t.Errorf("translation disagrees:\n%s\nvs\n%s", direct, viaDatalog)
	}
}

func TestPublicAPIConstruct(t *testing.T) {
	g, _ := ParseGraph(`
		dbUllman is_author_of tcb .
		dbUllman name jeff .
	`)
	q, err := ParseSPARQL(`CONSTRUCT { ?X name_author ?Z } WHERE { ?Y is_author_of ?Z . ?Y name ?X }`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Construct(q, g)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Errorf("constructed:\n%s", out)
	}
}

func TestPublicAPIProver(t *testing.T) {
	g, _ := ParseGraph(`a follows b .`)
	prog, err := ParseProgram(`
		triple(?X, follows, ?Y) -> exists ?Z triple(?Y, follows2, ?Z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := NewProver(g, prog)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := pv.Proves(datalog.MustParseAtom(`triple(a, follows, b)`))
	if err != nil || !ok {
		t.Errorf("database fact should be provable: %v %v", ok, err)
	}
	node, ok, err := pv.Prove(datalog.MustParseAtom(`triple(a, follows, b)`))
	if err != nil || !ok || node == nil {
		t.Errorf("Prove should return a tree: %v %v %v", node, ok, err)
	}
}
