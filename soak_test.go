package repro

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/limits"
	"repro/internal/workload"
)

// TestConcurrentSoak is the race-cleanliness proof for the serving layer: it
// hammers one shared Graph (plus shared parsed Query, SPARQLQuery, and
// Translation values) from many goroutines mixing every facade entry point,
// with per-evaluation fault injection (errors and panics) layered on top of
// whatever TRIQ_FAULTS arms process-wide. Run under -race in CI. Every
// outcome must be either a correct answer or a typed limits error — nothing
// else is acceptable from a server's point of view.
func TestConcurrentSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}

	shared := workload.TransportGraph(3, 2, 4, "svc")
	query, err := ParseQuery(`
		triple(?X, partOf, transportService) -> ts(?X).
		triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
		ts(?T), triple(?X, ?T, ?Y) -> conn(?X, ?Y).
		ts(?T), triple(?X, ?T, ?Z), conn(?Z, ?Y) -> conn(?X, ?Y).
		conn(?X, ?Y) -> query(?X, ?Y).
	`, "query")
	if err != nil {
		t.Fatal(err)
	}
	// The exact (ProofTree) mode gets the cheaper reachability query: full
	// transitive connectivity is exponential for proof enumeration, and the
	// soak is about shared-state safety, not prover throughput.
	exactQuery, err := ParseQuery(`
		triple(?X, partOf, transportService) -> ts(?X).
		triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
		ts(?X) -> q(?X).
	`, "q")
	if err != nil {
		t.Fatal(err)
	}
	sq, err := ParseSPARQL(`SELECT ?x ?y WHERE { ?x partOf ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TranslateSPARQL(sq.Pattern(), PlainRegime)
	if err != nil {
		t.Fatal(err)
	}

	// The full answer row count, computed once single-threaded, is the
	// correctness oracle for every fault-free concurrent evaluation.
	baseline, err := Ask(shared, query, TriQLite10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(baseline.Tuples)
	if wantRows == 0 {
		t.Fatal("baseline produced no answers; soak would prove nothing")
	}
	baseMS, _, err := AskSPARQL(sq, shared, PlainRegime, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantMappings := baseMS.Len()
	baseExact, err := Ask(shared, exactQuery, TriQLite10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantExactRows := len(baseExact.Tuples)
	if wantExactRows == 0 {
		t.Fatal("exact baseline produced no answers")
	}

	const workers = 32
	const itersPerWorker = 8

	var ok, faulted atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < itersPerWorker; i++ {
				if err := soakIteration(shared, query, exactQuery, sq, tr, wantRows, wantMappings, wantExactRows, w, i, &ok, &faulted); err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	t.Logf("soak: %d clean evaluations, %d typed fault outcomes", ok.Load(), faulted.Load())
	if ok.Load() == 0 {
		t.Error("no evaluation completed cleanly; fault plans are drowning the soak")
	}
	if faulted.Load() == 0 {
		t.Error("no fault ever fired; the soak is not exercising the error paths")
	}
}

// soakIteration runs one mixed-mode evaluation. Iterations cycle through the
// entry points and fault styles deterministically from (worker, iter), so a
// failing seed reproduces.
func soakIteration(g *Graph, q, exactQ Query, sq *SPARQLQuery, tr *Translation,
	wantRows, wantMappings, wantExactRows, worker, iter int, ok, faulted *atomic.Int64) error {
	mode := (worker*itersPrime + iter) % 6
	opts := Options{}
	// With TRIQ_FAULTS armed process-wide (the CI soak), even iterations with
	// no per-evaluation plan can legitimately see injected errors.
	injected := os.Getenv("TRIQ_FAULTS") != ""
	switch mode % 3 {
	case 1: // transient injected error deep into the chase
		opts.Chase.Faults = limits.NewPlan(limits.Fault{
			Point: "chase.rule", After: 2 + worker%5, Times: 1,
		})
		injected = true
	case 2: // injected panic, must surface as ErrInternal, never escape
		opts.Chase.Faults = limits.NewPlan(limits.Fault{
			Point: "chase.round", After: 1 + worker%2, Times: 1, Action: limits.ActPanic,
		})
		injected = true
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	checkErr := func(err error) error {
		if errors.Is(err, limits.ErrInjected) || errors.Is(err, ErrInternal) ||
			errors.Is(err, ErrDeadline) || errors.Is(err, ErrCanceled) || IsBudget(err) {
			faulted.Add(1)
			return nil
		}
		return fmt.Errorf("outcome outside the taxonomy: %w", err)
	}

	switch mode {
	case 0, 1, 2:
		res, err := AskCtx(ctx, g, q, TriQLite10, opts)
		if err != nil {
			if !injected {
				return fmt.Errorf("Ask failed without injection: %w", err)
			}
			return checkErr(err)
		}
		if len(res.Tuples) != wantRows {
			return fmt.Errorf("Ask: got %d rows, want %d", len(res.Tuples), wantRows)
		}
	case 3, 4:
		ms, _, err := AskSPARQLCtx(ctx, sq, g, PlainRegime, opts)
		if err != nil {
			if mode == 3 && !injected {
				return fmt.Errorf("AskSPARQL failed without injection: %w", err)
			}
			return checkErr(err)
		}
		if ms.Len() != wantMappings {
			return fmt.Errorf("AskSPARQL: got %d mappings, want %d", ms.Len(), wantMappings)
		}
		// Exercise the shared compiled Translation from the same goroutine.
		ms2, _, err := tr.EvaluateCtx(ctx, g, Options{})
		if err != nil {
			return checkErr(err)
		}
		if ms2.Len() != wantMappings {
			return fmt.Errorf("Translation: got %d mappings, want %d", ms2.Len(), wantMappings)
		}
	default:
		res, err := AskExactCtx(ctx, g, exactQ, opts)
		if err != nil {
			return checkErr(err)
		}
		if len(res.Tuples) != wantExactRows {
			return fmt.Errorf("AskExact: got %d rows, want %d", len(res.Tuples), wantExactRows)
		}
	}
	ok.Add(1)
	return nil
}

// itersPrime decorrelates worker id from mode so every worker visits every
// entry point.
const itersPrime = 7
