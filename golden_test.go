package repro

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/limits"
	"repro/internal/mat"
	"repro/internal/triq"
)

// The golden corpus pins end-to-end behavior: each fixture under
// testdata/golden/<name>/ is a graph (or ontology), a query (Datalog or
// SPARQL), and the expected answers in expected.txt. Every fixture is
// evaluated twice — sequentially and on the 8-worker parallel chase — and
// both runs must reproduce the golden file byte for byte. Regenerate after
// an intentional behavior change with:
//
//	go test -run TestGolden . -update

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden/*/expected.txt")

// goldenCase configures one fixture directory. Files:
//
//	graph.nt     — N-Triples database (or ontology.owl, functional syntax)
//	program.dlog — Datalog^{∃,¬s,⊥} program answered at `output`, or
//	query.rq     — SPARQL SELECT evaluated under `regime`
//	expected.txt — the golden answers
type goldenCase struct {
	name   string
	lang   Language // Datalog fixtures: dialect the program must pass
	output string   // Datalog fixtures: output predicate
	regime Regime   // SPARQL fixtures
}

var goldenCases = []goldenCase{
	{name: "transport", lang: TriQLite10, output: "query"},
	{name: "triangle", lang: TriQLite10, output: "query"},
	{name: "negation", lang: TriQLite10, output: "query"},
	{name: "anonymize", lang: TriQLite10, output: "query"},
	{name: "coauthors-opt", regime: PlainRegime},
	{name: "union-filter", regime: PlainRegime},
	{name: "university-person", regime: AllRegime},
	{name: "university-worksfor", regime: ActiveDomainRegime},
	{name: "university-teaches", regime: AllRegime},
	{name: "university-inconsistent", regime: ActiveDomainRegime},
}

// goldenGraph loads the fixture database: graph.nt, ontology.owl, or both
// merged (ABox triples alongside an ontology's RDF encoding).
func goldenGraph(t *testing.T, dir string) *Graph {
	t.Helper()
	var g *Graph
	if src, err := os.ReadFile(filepath.Join(dir, "ontology.owl")); err == nil {
		onto, err := ParseOntology(string(src))
		if err != nil {
			t.Fatalf("%s: parse ontology: %v", dir, err)
		}
		g = onto.ToGraph()
	}
	if src, err := os.ReadFile(filepath.Join(dir, "graph.nt")); err == nil {
		h, err := ParseGraph(string(src))
		if err != nil {
			t.Fatalf("%s: parse graph: %v", dir, err)
		}
		if g == nil {
			g = h
		} else {
			for _, tr := range h.Triples() {
				g.Add(tr)
			}
		}
	}
	if g == nil {
		t.Fatalf("%s: no graph.nt or ontology.owl", dir)
	}
	return g
}

// goldenRun evaluates the fixture at the given worker count and renders the
// answers in the canonical golden format.
func goldenRun(t *testing.T, c goldenCase, dir string, parallelism int) string {
	t.Helper()
	g := goldenGraph(t, dir)
	opts := Options{Chase: chase.Options{Parallelism: parallelism}}
	var b strings.Builder
	if src, err := os.ReadFile(filepath.Join(dir, "program.dlog")); err == nil {
		q, err := ParseQuery(string(src), c.output)
		if err != nil {
			t.Fatalf("%s: parse program: %v", dir, err)
		}
		res, err := Ask(g, q, c.lang, opts)
		if err != nil {
			t.Fatalf("%s: ask: %v", dir, err)
		}
		fmt.Fprintf(&b, "inconsistent: %v\n", res.Inconsistent)
		for _, row := range res.Rows() {
			b.WriteString(row)
			b.WriteByte('\n')
		}
		return b.String()
	}
	src, err := os.ReadFile(filepath.Join(dir, "query.rq"))
	if err != nil {
		t.Fatalf("%s: no program.dlog or query.rq", dir)
	}
	q, err := ParseSPARQL(string(src))
	if err != nil {
		t.Fatalf("%s: parse query: %v", dir, err)
	}
	ms, inconsistent, err := AskSPARQL(q, g, c.regime, opts)
	if err != nil {
		t.Fatalf("%s: ask sparql: %v", dir, err)
	}
	fmt.Fprintf(&b, "inconsistent: %v\n", inconsistent)
	if ms != nil && ms.Len() > 0 {
		b.WriteString(ms.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestGolden(t *testing.T) {
	for _, c := range goldenCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "golden", c.name)
			seq := goldenRun(t, c, dir, 1)
			par := goldenRun(t, c, dir, 8)
			if seq != par {
				t.Fatalf("%s: sequential and parallel runs disagree:\n--- P=1\n%s--- P=8\n%s", c.name, seq, par)
			}
			expPath := filepath.Join(dir, "expected.txt")
			if *updateGolden {
				if err := os.WriteFile(expPath, []byte(seq), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(expPath)
			if err != nil {
				t.Fatalf("%s: %v (run with -update to create)", c.name, err)
			}
			if string(want) != seq {
				t.Errorf("%s: answers changed:\n--- want\n%s--- got\n%s", c.name, want, seq)
			}
		})
	}
}

// goldenDeleteCases pin the incremental deletion path: each fixture carries a
// delete.nt batch alongside graph.nt and a recursive program.dlog. The graph
// is committed to a live store wired into a materializer, the program's
// materialization is built warm, the batch is deleted — folded by DRed, since
// every program here is recursive — and the post-delete answers, served from
// the maintained instance, are the golden bytes. A from-scratch chase of the
// post-delete graph must agree exactly.
var goldenDeleteCases = []goldenCase{
	{name: "delete-transport", lang: TriQLite10, output: "query"},
	{name: "delete-diamond", lang: TriQLite10, output: "query"},
	{name: "delete-hub", lang: TriQLite10, output: "query"},
}

func goldenDeleteRun(t *testing.T, c goldenCase, dir string, parallelism int) string {
	t.Helper()
	g := goldenGraph(t, dir)
	delSrc, err := os.ReadFile(filepath.Join(dir, "delete.nt"))
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	del, err := ParseGraph(string(delSrc))
	if err != nil {
		t.Fatalf("%s: parse delete.nt: %v", dir, err)
	}
	progSrc, err := os.ReadFile(filepath.Join(dir, "program.dlog"))
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	q, err := ParseQuery(string(progSrc), c.output)
	if err != nil {
		t.Fatalf("%s: parse program: %v", dir, err)
	}

	copts := chase.Options{Parallelism: parallelism}
	m := mat.New(mat.Config{Chase: copts})
	st, _, err := OpenStore(StoreConfig{OnCommit: m.OnCommit})
	if err != nil {
		t.Fatalf("%s: open store: %v", dir, err)
	}
	defer st.Close()
	m.Reset(st.Current().Seq)
	if _, _, err := st.Insert(g.Triples()); err != nil {
		goldenSkipInjected(t, err)
		t.Fatalf("%s: insert: %v", dir, err)
	}
	opts := Options{Chase: copts, Mat: m, MatEpoch: st.Current().Seq}
	if _, err := Ask(st.Current().Graph, q, c.lang, opts); err != nil {
		goldenSkipInjected(t, err)
		t.Fatalf("%s: cold build: %v", dir, err)
	}
	if _, _, err := st.Delete(del.Triples()); err != nil {
		goldenSkipInjected(t, err)
		t.Fatalf("%s: delete: %v", dir, err)
	}
	if snap := m.Snapshot(); snap.Programs != 1 && os.Getenv("TRIQ_FAULTS") == "" {
		t.Fatalf("%s: materialization dropped during delete maintenance", dir)
	}
	ep := st.Current()
	opts.MatEpoch = ep.Seq
	res, err := Ask(ep.Graph, q, c.lang, opts)
	if err != nil {
		goldenSkipInjected(t, err)
		t.Fatalf("%s: ask after delete: %v", dir, err)
	}
	plain, err := Ask(ep.Graph, q, c.lang, Options{Chase: copts})
	if err != nil {
		goldenSkipInjected(t, err)
		t.Fatalf("%s: chase after delete: %v", dir, err)
	}
	got, want := renderGolden(res), renderGolden(plain)
	if got != want {
		t.Fatalf("%s: DRed-maintained answers diverge from the re-chase:\n--- maintained\n%s--- chase\n%s", dir, got, want)
	}
	return got
}

func renderGolden(res *Results) string {
	var b strings.Builder
	fmt.Fprintf(&b, "inconsistent: %v\n", res.Inconsistent)
	for _, row := range res.Rows() {
		b.WriteString(row)
		b.WriteByte('\n')
	}
	return b.String()
}

func goldenSkipInjected(t *testing.T, err error) {
	t.Helper()
	if err != nil && errors.Is(err, limits.ErrInjected) {
		t.Skipf("injected fault (TRIQ_FAULTS armed)")
	}
}

func TestGoldenDelete(t *testing.T) {
	for _, c := range goldenDeleteCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "golden", c.name)
			seq := goldenDeleteRun(t, c, dir, 1)
			par := goldenDeleteRun(t, c, dir, 8)
			if seq != par {
				t.Fatalf("%s: sequential and parallel runs disagree:\n--- P=1\n%s--- P=8\n%s", c.name, seq, par)
			}
			expPath := filepath.Join(dir, "expected.txt")
			if *updateGolden {
				if err := os.WriteFile(expPath, []byte(seq), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(expPath)
			if err != nil {
				t.Fatalf("%s: %v (run with -update to create)", c.name, err)
			}
			if string(want) != seq {
				t.Errorf("%s: answers changed:\n--- want\n%s--- got\n%s", c.name, want, seq)
			}
		})
	}
}

// TestGoldenDialects pins that the Datalog fixtures stay inside the language
// the paper assigns them (TriQ-Lite 1.0 ⇒ PTime data complexity), and that
// the SPARQL fixtures translate into it (Corollary 6.2).
func TestGoldenDialects(t *testing.T) {
	for _, c := range goldenCases {
		dir := filepath.Join("testdata", "golden", c.name)
		if src, err := os.ReadFile(filepath.Join(dir, "program.dlog")); err == nil {
			q, err := ParseQuery(string(src), c.output)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			if err := Validate(q, c.lang); err != nil {
				t.Errorf("%s: program left its dialect: %v", c.name, err)
			}
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, "query.rq"))
		if err != nil {
			continue
		}
		q, err := ParseSPARQL(string(src))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		tr, err := TranslateSPARQL(q.Pattern(), c.regime)
		if err != nil {
			t.Fatalf("%s: translate: %v", c.name, err)
		}
		if err := triq.Validate(tr.Query, triq.TriQLite10); err != nil {
			t.Errorf("%s: translation left TriQ-Lite 1.0: %v", c.name, err)
		}
	}
}
