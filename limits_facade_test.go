package repro

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/limits"
	"repro/internal/obs"
)

const facadeData = `
	TheAirline partOf transportService .
	A311 partOf TheAirline .
	Oxford A311 London .
	London B42 Berlin .
`

const facadeRules = `
	triple(?X, partOf, transportService) -> ts(?X).
	triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
	ts(?T), triple(?X, ?T, ?Y) -> conn(?X, ?Y).
	ts(?T), triple(?X, ?T, ?Z), conn(?Z, ?Y) -> conn(?X, ?Y).
	conn(?X, ?Y) -> query(?X, ?Y).
`

func facadeQuery(t *testing.T) (*Graph, Query) {
	t.Helper()
	g, err := ParseGraph(facadeData)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(facadeRules, "query")
	if err != nil {
		t.Fatal(err)
	}
	return g, q
}

func TestAskCtxCanceledReturnsErrCanceled(t *testing.T) {
	g, q := facadeQuery(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AskCtx(ctx, g, q, TriQLite10, Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestAskDegradesOnFactBudget(t *testing.T) {
	g, q := facadeQuery(t)
	full, err := Ask(g, q, TriQLite10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{}
	opts.Chase.MaxFacts = 6
	res, err := Ask(g, q, TriQLite10, opts)
	if err != nil {
		t.Fatalf("budget trips must degrade at the facade, not error: %v", err)
	}
	if !res.Incomplete {
		t.Fatal("budget-tripped Ask must set Results.Incomplete")
	}
	if res.Truncation == nil || res.Truncation.Limit != limits.LimitFacts {
		t.Fatalf("Results.Truncation = %+v, want facts", res.Truncation)
	}
	if len(res.Tuples) >= len(full.Tuples) {
		t.Fatalf("partial = %d tuples, full = %d; want fewer", len(res.Tuples), len(full.Tuples))
	}
	// Soundness: every partial tuple appears in the full answer set.
	fullRows := make(map[string]bool)
	for _, row := range full.Rows() {
		fullRows[row] = true
	}
	for _, row := range res.Rows() {
		if !fullRows[row] {
			t.Fatalf("partial answer %q is not a certain answer", row)
		}
	}
}

func TestAskRecoverInjectedPanic(t *testing.T) {
	g, q := facadeQuery(t)
	opts := Options{}
	opts.Chase.Faults = limits.NewPlan(limits.Fault{Point: "chase.rule", Action: limits.ActPanic})
	_, err := Ask(g, q, TriQLite10, opts)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("an engine panic must surface as ErrInternal, got %v", err)
	}
	var ie *limits.InternalError
	if !errors.As(err, &ie) || len(ie.Stack) == 0 {
		t.Fatalf("ErrInternal must carry the captured stack: %v", err)
	}
}

func TestAskSPARQLCtxDegradesOnBudget(t *testing.T) {
	g, err := ParseGraph(facadeData)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := ParseSPARQL(`SELECT ?X ?Y WHERE { ?X partOf ?Y }`)
	if err != nil {
		t.Fatal(err)
	}
	fullMS, _, err := AskSPARQL(sq, g, PlainRegime, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{}
	opts.Chase.MaxFacts = 8
	ms, _, err := AskSPARQLCtx(context.Background(), sq, g, PlainRegime, opts)
	if err != nil {
		t.Fatalf("budget trips must degrade, not error: %v", err)
	}
	if !ms.Incomplete || ms.Truncation == nil {
		t.Fatalf("budget-tripped AskSPARQL must mark the MappingSet incomplete (%+v)", ms.Truncation)
	}
	// Soundness: partial mappings are a subset of the full set.
	for _, m := range ms.Mappings() {
		if !fullMS.Has(m) {
			t.Fatalf("partial mapping %v is not in the full answer set", m)
		}
	}
}

func TestAskSPARQLCtxTimeout(t *testing.T) {
	g, err := ParseGraph(facadeData)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := ParseSPARQL(`SELECT ?X ?Y WHERE { ?X partOf ?Y }`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	_, _, err = AskSPARQLCtx(ctx, sq, g, PlainRegime, Options{})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
}

func TestEvalSPARQLCtxCanceled(t *testing.T) {
	g, err := ParseGraph(facadeData)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := ParseSPARQL(`SELECT ?X ?Y WHERE { ?X partOf ?Y . ?Y partOf ?Z }`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = EvalSPARQLCtx(ctx, sq, g)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestAskAbortEmitsObsEventWithLimitName(t *testing.T) {
	g, q := facadeQuery(t)
	var buf bytes.Buffer
	opts := Options{}
	opts.Chase.MaxFacts = 6
	opts.Chase.Obs = obs.NewWithSink(&buf)
	res, err := Ask(g, q, TriQLite10, opts)
	if err != nil || !res.Incomplete {
		t.Fatalf("expected degraded run, got res=%+v err=%v", res, err)
	}
	records, err := obs.ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if r["kind"] == "event" && r["name"] == "limits.aborted" {
			attrs, _ := r["attrs"].(map[string]any)
			if attrs["limit"] != limits.LimitFacts {
				t.Fatalf("limits.aborted limit attr = %v, want %q", attrs["limit"], limits.LimitFacts)
			}
			return
		}
	}
	t.Fatal("trace has no limits.aborted event")
}

func TestAskExactCtxDeadline(t *testing.T) {
	g, q := facadeQuery(t)
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	_, err := AskExactCtx(ctx, g, q, Options{})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
}

func TestTruncationRoundTripAtFacade(t *testing.T) {
	g, q := facadeQuery(t)
	opts := Options{}
	opts.Chase.MaxFacts = 6
	res, err := Ask(g, q, TriQLite10, opts)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := res.Truncation.Err()
	if !IsBudget(rebuilt) || !errors.Is(rebuilt, ErrFactBudget) {
		t.Fatalf("Truncation.Err() lost the taxonomy: %v", rebuilt)
	}
	if tr, ok := TruncationOf(rebuilt); !ok || tr.Limit != limits.LimitFacts {
		t.Fatalf("re-extracted truncation = %+v (ok=%v)", tr, ok)
	}
}
